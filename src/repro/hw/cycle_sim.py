"""Event-driven cycle simulator of the two-pronged ViTCoD pipeline.

The analytical model (:mod:`repro.hw.accelerator`) charges phase times in
closed form; this simulator *executes* the schedule instead: every (head,
column) of the polarized mask becomes a job, jobs flow through shared
resources (one DRAM channel via :class:`~repro.hw.dram.DramModel`, two
engine MAC-line groups, per-engine softmax units) with double-buffered K
loads, and the makespan/utilization emerge from resource contention rather
than from max() formulas.

It exists for two reasons, mirroring how the paper validates its simulator
against RTL:

* **validation** — the test suite checks that the event-driven makespan and
  the analytical phase model agree within a bounded factor and move
  together across sparsity levels;
* **schedule insight** — it reports per-resource busy time (denser engine,
  sparser engine, DRAM, softmax), exposing utilization effects the closed
  form can only assume.

It is deliberately column-granular (an event per K column, not per cycle):
fine enough to capture pipelining and contention, coarse enough to simulate
a 197-token, 12-head layer in microseconds of wall time.

Two interchangeable engines implement the same schedule:

* ``engine="vectorized"`` (default) expresses the per-column FCFS queue
  recurrences as numpy scans — the double-buffered compute recurrence
  ``compute_free[i] = max(compute_free[i-1], load_done[i]) + cycles[i]``
  is a max-plus scan, computed as
  ``cumsum(cycles) + maximum.accumulate(load_done - exclusive_cumsum(cycles))``
  — so a whole layer is a handful of array ops;
* ``engine="scalar"`` is the original per-:class:`ColumnJob` Python event
  loop, retained as the executable reference semantics.

To let tests assert *exact* (bitwise) agreement between the two, every
event duration is snapped to a ``2**-20``-cycle grid (:func:`_quantize`):
compute and softmax durations are integer cycle counts already, and DRAM
service times are quantized at the single point where they enter the event
algebra.  With all durations on that grid and makespans far below ``2**33``
cycles, every double-precision add/max in either engine is exact, so the
scan and the loop agree bit-for-bit regardless of association order.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from math import ceil
from typing import List, Optional, Tuple

import numpy as np

from ..perf.memo import instance_memo
from ..sim.engine import AttentionSimulatorBase, merge_results
from .allocator import allocate_mac_lines
from .dram import DramModel, DramRequest
from .params import VITCOD_DEFAULT, HardwareConfig
from .workload import AttentionWorkload, ModelWorkload, split_remainder

__all__ = ["Timeline", "EngineSchedule", "CycleSimResult",
           "CycleAccurateSimulator", "merge_cycle_results"]

#: Durations are quantized to multiples of ``1 / _TIME_SCALE`` cycles so the
#: event algebra is exact in double precision (see module docstring).
_TIME_SCALE = float(1 << 20)


def _quantize(cycles):
    """Snap a duration to the ``2**-20``-cycle grid."""
    return round(cycles * _TIME_SCALE) / _TIME_SCALE


def _queue_scan(request_times, durations, init=0.0):
    """Vectorized FCFS queue: ``f[i] = max(f[i-1], request_times[i]) + durations[i]``.

    ``f[-1] = init``.  Unrolling the recurrence gives
    ``f[i] = C[i] + max(init, max_{j<=i}(request_times[j] - C[j-1]))`` with
    ``C = cumsum(durations)`` — an associative max-plus scan.  Returns the
    array of completion times (empty input -> empty array).
    """
    durations = np.asarray(durations, dtype=np.float64)
    if durations.size == 0:
        return durations
    total = np.cumsum(durations)
    slack = np.asarray(request_times, dtype=np.float64) - (total - durations)
    return total + np.maximum(np.maximum.accumulate(slack), init)


def _queue_scan_rows(request_times, durations, init):
    """Row-wise :func:`_queue_scan`: one independent FCFS queue per row.

    Running the cumulative sums and maxima along ``axis=1`` restarts the
    recurrence at every row — rows are the batched engine's per-layer reset
    points.  ``init`` broadcasts per row (shape ``(rows, 1)``).
    """
    if durations.shape[1] == 0:
        return durations
    total = np.cumsum(durations, axis=1)
    slack = request_times - (total - durations)
    return total + np.maximum(np.maximum.accumulate(slack, axis=1), init)


def _pad_rows(arrays):
    """Stack variable-length int64 job arrays into a zero-padded matrix.

    Returns ``(matrix, lengths)``; zero products mean zero-duration jobs,
    so padded slots are inert in every duration computation.
    """
    lengths = np.array([a.size for a in arrays], dtype=np.int64)
    width = int(lengths.max()) if lengths.size else 0
    matrix = np.zeros((len(arrays), width), dtype=np.int64)
    for i, a in enumerate(arrays):
        matrix[i, : a.size] = a
    return matrix, lengths


def _masked_load_times(base, step, lengths, width):
    """Per-row load-completion ladders ``base + step * (1..width)``.

    Slots at or beyond a row's length get ``-inf`` request times: combined
    with their zero durations they can never raise a row's running
    max-plus state, so padding is invisible to the scans.
    """
    ladder = base[:, None] + step[:, None] * np.arange(1, width + 1)
    ladder[np.arange(width)[None, :] >= lengths[:, None]] = -np.inf
    return ladder


def _row_finals(values, lengths):
    """Last real (unpadded) value of each row; 0.0 for empty rows."""
    if values.shape[1] == 0:
        return np.zeros(lengths.size)
    picked = values[np.arange(lengths.size), np.maximum(lengths - 1, 0)]
    return np.where(lengths > 0, picked, 0.0)


@dataclass
class Timeline:
    """A serially-shared resource: requests queue FCFS."""

    name: str
    free_at: float = 0.0
    busy: float = 0.0
    served: int = 0

    def acquire(self, earliest_start, duration):
        """Reserve the resource; returns (start, completion) times."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        start = max(earliest_start, self.free_at)
        self.free_at = start + duration
        self.busy += duration
        self.served += 1
        return start, start + duration

    def utilization(self, makespan):
        if makespan <= 0:
            return 0.0
        return min(1.0, self.busy / makespan)


@dataclass(frozen=True)
class ColumnJob:
    """One K column's worth of SDDMM work on one head."""

    head: int
    column: int
    products: int  # masked Q·K dot products in this column
    load_bytes: int
    sequential: bool


@dataclass
class EngineSchedule:
    """Execution state of one engine (denser or sparser)."""

    name: str
    mac_lines: int
    macs_per_line: int
    jobs: List[ColumnJob] = field(default_factory=list)
    finish_time: float = 0.0

    def compute_cycles(self, job, head_dim):
        if job.products == 0:
            return 0.0
        waves = ceil(job.products / max(self.mac_lines, 1))
        return waves * ceil(head_dim / self.macs_per_line)


@dataclass
class CycleSimResult:
    """Outcome of one event-driven simulation (a layer or a whole model).

    Whole-model results additionally carry the per-layer breakdown in
    ``per_layer`` (one single-layer :class:`CycleSimResult` per attention
    layer, in layer order) so figure runners can plot layer-resolved
    makespans/utilizations from one batched run.
    """

    makespan: float
    sddmm_makespan: float
    spmm_makespan: float
    denser_busy: float
    sparser_busy: float
    dram_busy: float
    softmax_busy: float
    jobs_executed: int
    per_layer: Tuple["CycleSimResult", ...] = ()

    @property
    def denser_utilization(self):
        return self.denser_busy / self.makespan if self.makespan else 0.0

    @property
    def sparser_utilization(self):
        return self.sparser_busy / self.makespan if self.makespan else 0.0

    @property
    def dram_utilization(self):
        return self.dram_busy / self.makespan if self.makespan else 0.0

    def _layers(self):
        """This result as a tuple of single-layer results."""
        return self.per_layer if self.per_layer else (self,)

    def merged(self, other: "CycleSimResult") -> "CycleSimResult":
        """Concatenate two sequential results (mirrors ``SimReport.merged``):
        totals add, ``per_layer`` chains both sides' layer breakdowns."""
        return CycleSimResult(
            makespan=self.makespan + other.makespan,
            sddmm_makespan=self.sddmm_makespan + other.sddmm_makespan,
            spmm_makespan=self.spmm_makespan + other.spmm_makespan,
            denser_busy=self.denser_busy + other.denser_busy,
            sparser_busy=self.sparser_busy + other.sparser_busy,
            dram_busy=self.dram_busy + other.dram_busy,
            softmax_busy=self.softmax_busy + other.softmax_busy,
            jobs_executed=self.jobs_executed + other.jobs_executed,
            per_layer=self._layers() + other._layers(),
        )


def merge_cycle_results(results) -> CycleSimResult:
    """Fold per-layer results into one whole-model :class:`CycleSimResult`.

    Raises :class:`ValueError` on an empty sequence; the merged result
    always exposes ``per_layer`` (even for a single layer).
    """
    results = list(results)
    total = merge_results(results, "no attention layers to simulate")
    if len(results) == 1:
        total = replace(total, per_layer=(results[0],))
    return total


class CycleAccurateSimulator(AttentionSimulatorBase):
    """Event-driven companion to :class:`ViTCoDAccelerator`.

    Parameters
    ----------
    config:
        Hardware design point (defaults to the paper's).
    use_ae:
        Compress Q/K streams/loads by ``ae_compression``.
    dram:
        Optional custom :class:`DramModel` (burst/row-buffer behaviour).
    engine:
        ``"vectorized"`` (default) runs the numpy scan scheduler; for
        whole-model runs it batches every layer into one 2-D scan (rows are
        the per-layer reset points).  ``"scalar"`` runs the reference
        per-job event loop, layer by layer.  Both produce identical
        :class:`CycleSimResult` values.
    scan:
        Batched whole-model scan strategy (vectorized engine only).
        ``"split"`` (default) runs per-engine scans — two compute + two
        softmax launches per model.  ``"fused"`` folds BOTH engines of
        every layer into one ``(2L × jobs)`` compute scan (denser rows
        stacked on sparser rows, each row its own max-plus reset) and both
        softmax queues into one ``(L × jobs)`` scan (a layer's softmax
        unit serves denser then sparser requests as ONE FCFS queue) —
        halving scan launches.  The two agree bit for bit (all durations
        live on the ``2**-20``-cycle grid, so every association of the
        event algebra is exact).  Measurement keeps ``"split"`` the
        default: polarized masks make the denser engine ~15× narrower
        than the sparser one, so padding both halves of the fused matrix
        to a common width costs more than the saved launches (0.75–1.0×
        across DeiT shapes; see the ``fused_scan`` benchmark) — the
        per-engine split IS the width-banded optimal fold.
    """

    _ENGINES = ("vectorized", "scalar")
    _SCANS = ("split", "fused")

    name = "CycleSim"

    def __init__(self, config: Optional[HardwareConfig] = None, use_ae=True,
                 ae_compression=0.5, dram: Optional[DramModel] = None,
                 engine="vectorized", scan="split"):
        self.config = config or VITCOD_DEFAULT
        self.use_ae = use_ae
        if not 0.0 < ae_compression <= 1.0:
            raise ValueError("ae_compression must be in (0, 1]")
        if engine not in self._ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {self._ENGINES}"
            )
        if scan not in self._SCANS:
            raise ValueError(
                f"unknown scan {scan!r}; choose from {self._SCANS}"
            )
        self.ae_compression = ae_compression
        self.engine = engine
        self.scan = scan
        self.dram = dram or DramModel(
            bytes_per_cycle=self.config.bytes_per_cycle
        )

    # ------------------------------------------------------------------
    def _service(self, nbytes, sequential=True, tag=""):
        """Grid-quantized DRAM service time for one request (see module doc)."""
        return _quantize(self.dram.service_cycles(
            DramRequest(bytes=nbytes, sequential=sequential, tag=tag)
        ))

    def _build_jobs(self, layer: AttentionWorkload):
        """Split the layer's columns into denser and sparser job lists."""
        b = self.config.bytes_per_element
        ratio = self.ae_compression if self.use_ae else 1.0
        k_col_bytes = int(layer.head_dim * b * ratio)
        denser, sparser = [], []
        for h, head in enumerate(layer.heads):
            for col in range(head.num_global_tokens):
                denser.append(ColumnJob(
                    head=h, column=col, products=head.num_tokens,
                    load_bytes=k_col_bytes, sequential=True,
                ))
            col_nnz = head.sparser_column_nnz
            if col_nnz is None:
                # Fall back to the mean density when per-column counts are
                # unavailable (e.g. dense workloads); the remainder lands on
                # the leading columns so no products are dropped.
                col_nnz = split_remainder(
                    head.sparser_nnz, head.num_tokens - head.num_global_tokens
                )
            for j, nnz in enumerate(col_nnz):
                if nnz == 0:
                    continue
                sparser.append(ColumnJob(
                    head=h, column=head.num_global_tokens + j,
                    products=int(nnz), load_bytes=k_col_bytes,
                    sequential=True,
                ))
        return denser, sparser

    def _column_products(self, layer: AttentionWorkload):
        """Per-column SDDMM products for both engines as int64 arrays.

        Mirrors :meth:`_build_jobs` (same job order, zero-product sparser
        columns dropped) without materialising per-job objects; the arrays
        are memoized on the (frozen) workload so repeated simulations of a
        cached workload — DSE sweeps, benchmark repeats — skip the
        per-head walk entirely.
        """
        return layer.denser_job_products(), layer.sparser_job_products()

    def _run_engine(self, engine: EngineSchedule, dram: Timeline,
                    softmax: Timeline, head_dim, start_time=0.0):
        """Run one engine's job list with double-buffered K loads."""
        cfg = self.config
        load_done = start_time
        compute_free = start_time
        for job in engine.jobs:
            service = self._service(job.load_bytes, sequential=job.sequential)
            # Double buffering: the next K load may proceed while the
            # previous column computes, but loads serialise on the channel.
            _, load_done = dram.acquire(load_done, service)
            compute_cycles = engine.compute_cycles(job, head_dim)
            begin = max(compute_free, load_done)
            compute_free = begin + compute_cycles
            engine.finish_time = compute_free
            # Softmax consumes the finished column asynchronously.
            softmax.acquire(
                compute_free,
                ceil(job.products / cfg.softmax_lanes),
            )
        return engine.finish_time

    # ------------------------------------------------------------------
    def _layer_geometry(self, layer: AttentionWorkload):
        """Byte/tile quantities shared by both engines."""
        cfg = self.config
        b = cfg.bytes_per_element
        ratio = self.ae_compression if self.use_ae else 1.0
        k_col_bytes = int(layer.head_dim * b * ratio)
        tensor_bytes = layer.num_tokens * layer.embed_dim * b
        # Q stream occupies the channel up front (in k-tile chunks that
        # interleave with the K column loads in the real machine; FCFS
        # serialisation is a faithful upper bound at this granularity).
        k_tiles = max(1, ceil(tensor_bytes * ratio / (cfg.act_buffer_bytes / 2)))
        q_stream = int(tensor_bytes * ratio * k_tiles)
        return k_col_bytes, tensor_bytes, q_stream

    # ------------------------------------------------------------------
    # Per-(workload, config) geometry, memoized on the (frozen) workload.
    #
    # DSE sweeps hold the workload fixed while configs change, so each
    # piece of derived geometry is keyed by exactly the configuration
    # fields it reads: MAC-line allocations survive a bandwidth sweep,
    # DRAM service times survive a mac_lines sweep, and repeat scoring of
    # any point is free.  The tables live on the workload instance (the
    # slot is stripped from pickles alongside the job-product caches) so
    # every simulator sharing a cached workload shares them.
    # ------------------------------------------------------------------
    _GEOMETRY_SLOT = "_cycle_geometry"

    def _dram_memo_key(self):
        """Hashable DRAM signature, or ``None`` when memoizing is unsafe
        (a custom :class:`DramModel` subclass may read state the key
        cannot see)."""
        dram = self.dram
        if type(dram) is not DramModel:
            return None
        return (dram.bytes_per_cycle, dram.burst_bytes,
                dram.row_miss_penalty_cycles, dram.scattered_row_hit_rate)

    def _layer_services(self, layer: AttentionWorkload):
        """Quantized DRAM service times ``(q_stream, k_column, v_stream)``."""
        dram_key = self._dram_memo_key()
        if dram_key is None:
            return self._build_layer_services(layer)
        cfg = self.config
        ratio = self.ae_compression if self.use_ae else 1.0
        key = ("services", cfg.bytes_per_element, cfg.act_buffer_bytes,
               ratio, dram_key)
        return instance_memo(layer, self._GEOMETRY_SLOT, key,
                             lambda: self._build_layer_services(layer))

    def _build_layer_services(self, layer):
        k_col_bytes, tensor_bytes, q_stream = self._layer_geometry(layer)
        return (self._service(q_stream, tag="q-stream"),
                self._service(k_col_bytes),
                self._service(2 * tensor_bytes, tag="v-stream"))

    def _layer_alloc(self, layer: AttentionWorkload):
        """Engine MAC-line split ``(denser_lines, sparser_lines)``, both
        floored at 1 as the schedulers require."""
        key = ("alloc", self.config.num_mac_lines)
        return instance_memo(layer, self._GEOMETRY_SLOT, key,
                             lambda: self._build_layer_alloc(layer))

    def _build_layer_alloc(self, layer):
        head_dim = layer.head_dim
        denser_products, sparser_products = self._column_products(layer)
        alloc = allocate_mac_lines(
            self.config.num_mac_lines,
            int(denser_products.sum()) * head_dim,
            int(sparser_products.sum()) * head_dim,
        )
        return max(alloc.denser_lines, 1), max(alloc.sparser_lines, 1)

    def simulate_layer(self, layer: AttentionWorkload) -> CycleSimResult:
        if self.engine == "scalar":
            return self._simulate_layer_scalar(layer)
        return self._simulate_layer_vectorized(layer)

    def _simulate_layer_scalar(self, layer: AttentionWorkload) -> CycleSimResult:
        """Reference event loop: one :class:`Timeline` acquire per event."""
        cfg = self.config
        k_col_bytes, tensor_bytes, q_stream = self._layer_geometry(layer)

        denser_jobs, sparser_jobs = self._build_jobs(layer)
        denser_macs = sum(j.products for j in denser_jobs) * layer.head_dim
        sparser_macs = sum(j.products for j in sparser_jobs) * layer.head_dim
        alloc = allocate_mac_lines(cfg.num_mac_lines, denser_macs, sparser_macs)

        denser = EngineSchedule("denser", max(alloc.denser_lines, 1),
                                cfg.macs_per_line, denser_jobs)
        sparser = EngineSchedule("sparser", max(alloc.sparser_lines, 1),
                                 cfg.macs_per_line, sparser_jobs)
        dram = Timeline("dram")
        softmax = Timeline("softmax")

        dram.acquire(0.0, self._service(q_stream, tag="q-stream"))

        t_denser = self._run_engine(denser, dram, softmax, layer.head_dim)
        t_sparser = self._run_engine(sparser, dram, softmax, layer.head_dim)
        sddmm_done = max(t_denser, t_sparser, softmax.free_at)

        # SpMM phase: output-stationary on the full array; V streams and the
        # engines' lines are reunited.
        spmm_products = layer.total_nnz
        spmm_compute = (
            ceil(spmm_products / cfg.num_mac_lines)
            * ceil(layer.head_dim / cfg.macs_per_line)
        )
        v_bytes = 2 * tensor_bytes
        _, v_done = dram.acquire(
            sddmm_done, self._service(v_bytes, tag="v-stream")
        )
        spmm_done = max(sddmm_done + spmm_compute, v_done)

        denser_busy = sum(
            denser.compute_cycles(j, layer.head_dim) for j in denser_jobs
        )
        sparser_busy = sum(
            sparser.compute_cycles(j, layer.head_dim) for j in sparser_jobs
        )
        return CycleSimResult(
            makespan=spmm_done,
            sddmm_makespan=sddmm_done,
            spmm_makespan=spmm_done - sddmm_done,
            denser_busy=denser_busy,
            sparser_busy=sparser_busy,
            dram_busy=dram.busy,
            softmax_busy=softmax.busy,
            jobs_executed=len(denser_jobs) + len(sparser_jobs) + 2,
        )

    def _simulate_layer_vectorized(self, layer: AttentionWorkload) -> CycleSimResult:
        """Scan scheduler: the same schedule as array pipelines.

        Event order matches the scalar loop exactly: the Q stream holds the
        DRAM channel first, then the denser engine's column loads, then the
        sparser engine's, then the V stream; softmax requests arrive in
        engine completion order.
        """
        cfg = self.config
        head_dim = layer.head_dim

        denser_products, sparser_products = self._column_products(layer)
        n_d, n_s = denser_products.size, sparser_products.size
        d_lines, s_lines = self._layer_alloc(layer)

        # Integer durations (exact doubles): ceil-divisions in int64.
        per_wave = ceil(head_dim / cfg.macs_per_line)
        d_cycles = (-(-denser_products // d_lines) * per_wave).astype(np.float64)
        s_cycles = (-(-sparser_products // s_lines) * per_wave).astype(np.float64)
        lanes = cfg.softmax_lanes
        sm_d = (-(-denser_products // lanes)).astype(np.float64)
        sm_s = (-(-sparser_products // lanes)).astype(np.float64)

        # DRAM channel: q-stream, then one identical K-column load per job.
        q_service, s_col, v_service = self._layer_services(layer)
        load_done_d = q_service + s_col * np.arange(1, n_d + 1)
        load_done_s = (q_service + s_col * n_d
                       + s_col * np.arange(1, n_s + 1))

        # Double-buffered compute on each engine, then the shared softmax
        # queue (denser's requests precede sparser's, as in the event loop).
        free_d = _queue_scan(load_done_d, d_cycles)
        free_s = _queue_scan(load_done_s, s_cycles)
        t_denser = float(free_d[-1]) if n_d else 0.0
        t_sparser = float(free_s[-1]) if n_s else 0.0
        sm_after_d = _queue_scan(free_d, sm_d)
        sm_free = float(sm_after_d[-1]) if n_d else 0.0
        sm_after_s = _queue_scan(free_s, sm_s, init=sm_free)
        if n_s:
            sm_free = float(sm_after_s[-1])
        sddmm_done = max(t_denser, t_sparser, sm_free)

        spmm_products = layer.total_nnz
        spmm_compute = (
            ceil(spmm_products / cfg.num_mac_lines)
            * ceil(head_dim / cfg.macs_per_line)
        )
        dram_free = q_service + s_col * (n_d + n_s)
        v_done = max(sddmm_done, dram_free) + v_service
        spmm_done = max(sddmm_done + spmm_compute, v_done)

        return CycleSimResult(
            makespan=spmm_done,
            sddmm_makespan=sddmm_done,
            spmm_makespan=spmm_done - sddmm_done,
            denser_busy=float(d_cycles.sum()),
            sparser_busy=float(s_cycles.sum()),
            dram_busy=q_service + s_col * (n_d + n_s) + v_service,
            softmax_busy=float(sm_d.sum() + sm_s.sum()),
            jobs_executed=n_d + n_s + 2,
        )

    # Conform to the :mod:`repro.sim` per-layer naming.
    simulate_attention_layer = simulate_layer

    def simulate_attention(self, model) -> CycleSimResult:
        """Simulate a whole model's attention stack.

        Accepts a :class:`~repro.hw.workload.ModelWorkload` or any sequence
        of :class:`~repro.hw.workload.AttentionWorkload` layers.  With the
        vectorized engine, all layers run as ONE batched 2-D max-plus scan
        (see :meth:`_simulate_attention_batched`); the scalar engine loops
        layer by layer.  Either way the result's ``per_layer`` tuple holds
        the single-layer breakdowns and the totals are their field sums —
        the two engines agree bit-for-bit.
        """
        if isinstance(model, ModelWorkload):
            layers = list(model.attention_layers)
        else:
            layers = list(model)
        if not layers:
            raise ValueError("no attention layers to simulate")
        if self.engine == "scalar":
            return merge_cycle_results(
                self._simulate_layer_scalar(layer) for layer in layers
            )
        return self._simulate_attention_batched(layers)

    @staticmethod
    def _scan_split(load_done_d, load_done_s, d_cycles, s_cycles,
                    sm_d, sm_s, n_d, n_s):
        """Per-engine reference scans: two compute + two softmax launches.

        Returns per-layer ``(t_denser, t_sparser, sm_free)`` finish times.
        """
        zeros = np.zeros((n_d.size, 1))
        free_d = _queue_scan_rows(load_done_d, d_cycles, zeros)
        free_s = _queue_scan_rows(load_done_s, s_cycles, zeros)
        t_denser = _row_finals(free_d, n_d)
        t_sparser = _row_finals(free_s, n_s)
        sm_after_d = _queue_scan_rows(free_d, sm_d, zeros)
        sm_free_d = _row_finals(sm_after_d, n_d)
        sm_after_s = _queue_scan_rows(free_s, sm_s, sm_free_d[:, None])
        sm_free = np.where(n_s > 0, _row_finals(sm_after_s, n_s), sm_free_d)
        return t_denser, t_sparser, sm_free

    @staticmethod
    def _scan_fused(load_done_d, load_done_s, d_cycles, s_cycles,
                    sm_d, sm_s, n_d, n_s):
        """Both engines of every layer in ONE (2L × jobs) compute scan and
        ONE (L × jobs) softmax scan — half the launches of the split path.

        Rows stay independent max-plus resets, so stacking the denser rows
        on the sparser rows changes nothing about any row's event algebra;
        and a layer's softmax unit is ONE FCFS queue that serves all denser
        requests before the sparser ones (exactly the event-loop order), so
        concatenating the two request streams along the job axis replaces
        the split path's carried ``init`` with the same running state.
        Padded slots (zero duration, ``-inf`` request) are inert and carry
        each row's completion to the final column, which therefore IS the
        row's finish time.  All durations live on the ``2**-20``-cycle
        grid, so every value here is produced by exact double-precision
        ops and the fused and split scans agree bit for bit.
        """
        L = n_d.size
        w_d, w_s = d_cycles.shape[1], s_cycles.shape[1]
        width = max(w_d, w_s)
        if width == 0:
            return np.zeros(L), np.zeros(L), np.zeros(L)

        durations = np.zeros((2 * L, width))
        durations[:L, :w_d] = d_cycles
        durations[L:, :w_s] = s_cycles
        requests = np.full((2 * L, width), -np.inf)
        requests[:L, :w_d] = load_done_d
        requests[L:, :w_s] = load_done_s
        free = _queue_scan_rows(requests, durations, np.zeros((2 * L, 1)))
        t_denser = free[:L, -1]
        t_sparser = free[L:, -1]

        sm_requests = np.full((L, w_d + w_s), -np.inf)
        mask_d = np.arange(w_d)[None, :] < n_d[:, None]
        mask_s = np.arange(w_s)[None, :] < n_s[:, None]
        sm_requests[:, :w_d][mask_d] = free[:L, :w_d][mask_d]
        sm_requests[:, w_d:][mask_s] = free[L:, :w_s][mask_s]
        sm_durations = np.concatenate([sm_d, sm_s], axis=1)
        sm_after = _queue_scan_rows(sm_requests, sm_durations,
                                    np.zeros((L, 1)))
        return t_denser, t_sparser, sm_after[:, -1]

    def _simulate_attention_batched(self, layers) -> CycleSimResult:
        """All layers as one (layer × job) array pipeline.

        Per-layer job streams are padded into 2-D matrices whose rows are
        the layers; running every scan along ``axis=1`` restarts the
        max-plus recurrences at each row boundary, which IS the per-layer
        reset semantics of the layer loop.  Padding uses zero durations and
        ``-inf`` request times, so padded slots never influence a row's
        event algebra, and all real values are produced by the exact same
        IEEE operations as the single-layer scans — whole-model results
        therefore match the per-layer loop bit for bit.
        """
        cfg = self.config
        L = len(layers)
        lanes = cfg.softmax_lanes

        # Per-layer scalar geometry (identical expressions to the
        # single-layer path; cheap Python over L layers, with the service
        # times and line allocations memoized per (workload, config)).
        q_service = np.empty(L)
        s_col = np.empty(L)
        v_service = np.empty(L)
        per_wave = np.empty(L, dtype=np.int64)
        d_lines = np.empty(L, dtype=np.int64)
        s_lines = np.empty(L, dtype=np.int64)
        spmm_compute = np.empty(L, dtype=np.int64)
        products_d, products_s = [], []
        for i, layer in enumerate(layers):
            head_dim = layer.head_dim
            q_service[i], s_col[i], v_service[i] = self._layer_services(layer)
            d_prod, s_prod = self._column_products(layer)
            products_d.append(d_prod)
            products_s.append(s_prod)
            d_lines[i], s_lines[i] = self._layer_alloc(layer)
            per_wave[i] = ceil(head_dim / cfg.macs_per_line)
            spmm_compute[i] = (
                ceil(layer.total_nnz / cfg.num_mac_lines)
                * ceil(head_dim / cfg.macs_per_line)
            )

        pad_d, n_d = _pad_rows(products_d)
        pad_s, n_s = _pad_rows(products_s)

        # Integer durations (exact doubles), zero in the padded slots.
        d_cycles = (-(-pad_d // d_lines[:, None]) * per_wave[:, None]
                    ).astype(np.float64)
        s_cycles = (-(-pad_s // s_lines[:, None]) * per_wave[:, None]
                    ).astype(np.float64)
        sm_d = (-(-pad_d // lanes)).astype(np.float64)
        sm_s = (-(-pad_s // lanes)).astype(np.float64)

        # DRAM channel per layer: q-stream, denser K loads, sparser K loads.
        load_done_d = _masked_load_times(q_service, s_col, n_d, pad_d.shape[1])
        base_s = q_service + s_col * n_d
        load_done_s = _masked_load_times(base_s, s_col, n_s, pad_s.shape[1])

        # Double-buffered compute, then the shared per-layer softmax queue:
        # either one fused (2L × jobs) + (L × jobs) scan pair, or the
        # per-engine reference scans — bit-identical by construction.
        scan = (self._scan_fused if self.scan == "fused"
                else self._scan_split)
        t_denser, t_sparser, sm_free = scan(
            load_done_d, load_done_s, d_cycles, s_cycles, sm_d, sm_s,
            n_d, n_s,
        )
        sddmm_done = np.maximum(np.maximum(t_denser, t_sparser), sm_free)

        dram_free = q_service + s_col * (n_d + n_s)
        v_done = np.maximum(sddmm_done, dram_free) + v_service
        spmm_done = np.maximum(sddmm_done + spmm_compute, v_done)

        denser_busy = d_cycles.sum(axis=1)
        sparser_busy = s_cycles.sum(axis=1)
        dram_busy = q_service + s_col * (n_d + n_s) + v_service
        softmax_busy = sm_d.sum(axis=1) + sm_s.sum(axis=1)

        return merge_cycle_results(
            CycleSimResult(
                makespan=float(spmm_done[i]),
                sddmm_makespan=float(sddmm_done[i]),
                spmm_makespan=float(spmm_done[i] - sddmm_done[i]),
                denser_busy=float(denser_busy[i]),
                sparser_busy=float(sparser_busy[i]),
                dram_busy=float(dram_busy[i]),
                softmax_busy=float(softmax_busy[i]),
                jobs_executed=int(n_d[i] + n_s[i]) + 2,
            )
            for i in range(L)
        )
