"""ViTCoD accelerator simulator (paper §V)."""

from .params import EnergyTable, HardwareConfig, VITCOD_DEFAULT
from .workload import (
    HeadWorkload,
    HeadStatArrays,
    AttentionWorkload,
    GemmWorkload,
    ModelWorkload,
    attention_workload_from_masks,
    dense_attention_workload,
    synthetic_attention_workload,
    model_workload,
)
from .trace import LatencyBreakdown, EnergyBreakdown, SimReport
from .dataflow import (
    k_stationary_sddmm_cycles,
    s_stationary_sddmm_cycles,
    output_stationary_spmm_cycles,
    dense_gemm_cycles,
    softmax_cycles,
)
from .allocator import Allocation, allocate_mac_lines, allocate_mac_lines_batched
from .accelerator import ViTCoDAccelerator
from .dram import DramModel, DramRequest
from .cycle_sim import (
    CycleAccurateSimulator,
    CycleSimResult,
    Timeline,
    merge_cycle_results,
)

__all__ = [
    "EnergyTable",
    "HardwareConfig",
    "VITCOD_DEFAULT",
    "HeadWorkload",
    "HeadStatArrays",
    "AttentionWorkload",
    "GemmWorkload",
    "ModelWorkload",
    "attention_workload_from_masks",
    "dense_attention_workload",
    "synthetic_attention_workload",
    "model_workload",
    "LatencyBreakdown",
    "EnergyBreakdown",
    "SimReport",
    "k_stationary_sddmm_cycles",
    "s_stationary_sddmm_cycles",
    "output_stationary_spmm_cycles",
    "dense_gemm_cycles",
    "softmax_cycles",
    "Allocation",
    "allocate_mac_lines",
    "allocate_mac_lines_batched",
    "ViTCoDAccelerator",
    "DramModel",
    "DramRequest",
    "CycleAccurateSimulator",
    "CycleSimResult",
    "Timeline",
    "merge_cycle_results",
]
