"""Latency and energy bookkeeping shared by all simulators.

Every simulator (ViTCoD, SpAtten, Sanger) reports the same three latency
categories the paper's Fig. 19 breakdown uses:

* ``compute`` — cycles the critical path spends in MAC/softmax datapaths;
* ``preprocess`` — mask/index handling: CSC index loading (ViTCoD),
  on-the-fly mask prediction (Sanger), top-k ranking (SpAtten);
* ``data_movement`` — cycles the critical path stalls on DRAM (i.e. memory
  time *not* hidden under compute; the paper counts "overlapped computations
  and data movements" here).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["LatencyBreakdown", "EnergyBreakdown", "SimReport"]


@dataclass
class LatencyBreakdown:
    compute: float = 0.0
    preprocess: float = 0.0
    data_movement: float = 0.0

    @property
    def total(self):
        return self.compute + self.preprocess + self.data_movement

    def __add__(self, other):
        return LatencyBreakdown(
            compute=self.compute + other.compute,
            preprocess=self.preprocess + other.preprocess,
            data_movement=self.data_movement + other.data_movement,
        )

    def fractions(self):
        total = self.total
        if total == 0:
            return {"compute": 0.0, "preprocess": 0.0, "data_movement": 0.0}
        return {
            "compute": self.compute / total,
            "preprocess": self.preprocess / total,
            "data_movement": self.data_movement / total,
        }


@dataclass
class EnergyBreakdown:
    """Energy in picojoules by source."""

    mac: float = 0.0
    sram: float = 0.0
    dram: float = 0.0
    other: float = 0.0
    static: float = 0.0

    @property
    def total(self):
        return self.mac + self.sram + self.dram + self.other + self.static

    def __add__(self, other):
        return EnergyBreakdown(
            mac=self.mac + other.mac,
            sram=self.sram + other.sram,
            dram=self.dram + other.dram,
            other=self.other + other.other,
            static=self.static + other.static,
        )


@dataclass
class SimReport:
    """Result of simulating one workload on one platform."""

    platform: str
    workload: str
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)
    energy: EnergyBreakdown = field(default_factory=EnergyBreakdown)
    frequency_hz: float = 500e6
    details: dict = field(default_factory=dict)

    @property
    def cycles(self):
        return self.latency.total

    @property
    def seconds(self):
        return self.latency.total / self.frequency_hz

    @property
    def energy_pj(self):
        return self.energy.total

    @property
    def energy_joules(self):
        return self.energy.total * 1e-12

    def speedup_over(self, other):
        """How many times faster this report is than ``other``."""
        if self.seconds == 0:
            return float("inf")
        return other.seconds / self.seconds

    def energy_efficiency_over(self, other):
        if self.energy_pj == 0:
            return float("inf")
        return other.energy_pj / self.energy_pj

    def merged(self, other, workload=None):
        """Concatenate two sequential reports on the same platform."""
        if abs(self.frequency_hz - other.frequency_hz) > 1e-6:
            raise ValueError("cannot merge reports at different frequencies")
        return SimReport(
            platform=self.platform,
            workload=workload or f"{self.workload}+{other.workload}",
            latency=self.latency + other.latency,
            energy=self.energy + other.energy,
            frequency_hz=self.frequency_hz,
            details={**self.details, **other.details},
        )
