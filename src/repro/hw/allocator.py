"""Dynamic PE allocation between the Denser and Sparser engines (§V-B.1).

Because the fixed masks are known a priori, the per-layer workload of each
engine can be computed at compile time and MAC lines split proportionally —
"we allocate hardware resource to each engine proportional to its assigned
workload size".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Allocation", "allocate_mac_lines"]


@dataclass(frozen=True)
class Allocation:
    denser_lines: int
    sparser_lines: int

    @property
    def total(self):
        return self.denser_lines + self.sparser_lines


def allocate_mac_lines(total_lines, denser_macs, sparser_macs, reserve_min=1):
    """Split ``total_lines`` proportionally to the two engines' MAC counts.

    Each engine keeps at least ``reserve_min`` lines while it has work; an
    engine with zero work cedes everything to the other.
    """
    if total_lines < 2:
        raise ValueError("need at least 2 MAC lines to allocate")
    if denser_macs < 0 or sparser_macs < 0:
        raise ValueError("workload sizes must be non-negative")

    if denser_macs == 0 and sparser_macs == 0:
        half = total_lines // 2
        return Allocation(denser_lines=half, sparser_lines=total_lines - half)
    if sparser_macs == 0:
        return Allocation(denser_lines=total_lines, sparser_lines=0)
    if denser_macs == 0:
        return Allocation(denser_lines=0, sparser_lines=total_lines)

    denser = round(total_lines * denser_macs / (denser_macs + sparser_macs))
    denser = min(max(denser, reserve_min), total_lines - reserve_min)
    return Allocation(denser_lines=denser, sparser_lines=total_lines - denser)
