"""Dynamic PE allocation between the Denser and Sparser engines (§V-B.1).

Because the fixed masks are known a priori, the per-layer workload of each
engine can be computed at compile time and MAC lines split proportionally —
"we allocate hardware resource to each engine proportional to its assigned
workload size".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Allocation", "allocate_mac_lines", "allocate_mac_lines_batched"]


@dataclass(frozen=True)
class Allocation:
    denser_lines: int
    sparser_lines: int

    @property
    def total(self):
        return self.denser_lines + self.sparser_lines


def allocate_mac_lines(total_lines, denser_macs, sparser_macs, reserve_min=1):
    """Split ``total_lines`` proportionally to the two engines' MAC counts.

    Each engine keeps at least ``reserve_min`` lines while it has work; an
    engine with zero work cedes everything to the other.
    """
    if total_lines < 2:
        raise ValueError("need at least 2 MAC lines to allocate")
    if denser_macs < 0 or sparser_macs < 0:
        raise ValueError("workload sizes must be non-negative")

    if denser_macs == 0 and sparser_macs == 0:
        half = total_lines // 2
        return Allocation(denser_lines=half, sparser_lines=total_lines - half)
    if sparser_macs == 0:
        return Allocation(denser_lines=total_lines, sparser_lines=0)
    if denser_macs == 0:
        return Allocation(denser_lines=0, sparser_lines=total_lines)

    denser = round(total_lines * denser_macs / (denser_macs + sparser_macs))
    denser = min(max(denser, reserve_min), total_lines - reserve_min)
    return Allocation(denser_lines=denser, sparser_lines=total_lines - denser)


def allocate_mac_lines_batched(total_lines, denser_macs, sparser_macs,
                               reserve_min=1):
    """Vectorized :func:`allocate_mac_lines` over parallel workload arrays.

    Returns ``(denser_lines, sparser_lines)`` int64 arrays; element ``i``
    equals ``allocate_mac_lines(total_lines, denser_macs[i],
    sparser_macs[i])`` exactly (``np.round`` matches :func:`round`'s
    half-to-even on the proportional split).

    ``total_lines`` may itself be an array, broadcasting against the
    workload arrays — the grid-batched DSE path passes a ``(points, 1)``
    design-point column against ``(layers,)`` workloads to allocate every
    (point, layer) pair in one shot, each element still exactly equal to
    the scalar allocator's answer.
    """
    total_lines = np.asarray(total_lines, dtype=np.int64)
    if (total_lines < 2).any():
        raise ValueError("need at least 2 MAC lines to allocate")
    denser_macs = np.asarray(denser_macs, dtype=np.int64)
    sparser_macs = np.asarray(sparser_macs, dtype=np.int64)
    if (denser_macs < 0).any() or (sparser_macs < 0).any():
        raise ValueError("workload sizes must be non-negative")

    # The vectorized split needs total_lines * denser_macs exact in int64
    # and both division operands exact in float64; beyond 2**53 numpy's
    # int64 product / float64 conversion would round (or overflow) where
    # Python's big-int arithmetic stays exact, so defer to the scalar
    # allocator for such (far beyond paper-scale) workloads.
    exact_limit = float(2 ** 53)
    if denser_macs.size and total_lines.size and (
        float(denser_macs.max()) * float(total_lines.max()) >= exact_limit
        or float(denser_macs.max()) + float(sparser_macs.max()) >= exact_limit
    ):
        b_total, b_denser, b_sparser = np.broadcast_arrays(
            total_lines, denser_macs, sparser_macs
        )
        pairs = [
            allocate_mac_lines(int(t), int(d), int(s), reserve_min)
            for t, d, s in zip(b_total.ravel(), b_denser.ravel(),
                               b_sparser.ravel())
        ]
        shape = b_total.shape
        return (np.array([p.denser_lines for p in pairs],
                         dtype=np.int64).reshape(shape),
                np.array([p.sparser_lines for p in pairs],
                         dtype=np.int64).reshape(shape))

    total_macs = denser_macs + sparser_macs
    with np.errstate(invalid="ignore", divide="ignore"):
        share = np.round(total_lines * denser_macs / total_macs)
    share = np.clip(share, reserve_min, total_lines - reserve_min)
    share = np.where(total_macs == 0, total_lines // 2, share)
    share = np.where((sparser_macs == 0) & (total_macs > 0),
                     total_lines, share)
    share = np.where((denser_macs == 0) & (total_macs > 0), 0.0, share)
    denser_lines = share.astype(np.int64)
    return denser_lines, total_lines - denser_lines
