"""Workload descriptions consumed by the accelerator and baseline simulators.

An :class:`AttentionWorkload` captures one attention layer's polarized
sparsity structure (per-head global-token counts and non-zero counts) plus
shape metadata; a :class:`ModelWorkload` bundles all layers of a model with
its dense (QKV projection / MLP) GEMMs for end-to-end simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..formats.sparse import CSCMatrix, COOMatrix
from ..models.config import ModelConfig
from ..sparsity.split_conquer import SplitConquerResult, split_and_conquer
from ..sparsity.patterns import synthetic_vit_attention

__all__ = ["HeadWorkload", "HeadStatArrays", "AttentionWorkload",
           "GemmWorkload", "ModelWorkload",
           "attention_workload_from_masks", "dense_attention_workload",
           "synthetic_attention_workload", "model_workload",
           "split_remainder"]


def _memoized(obj, attr, builder):
    """Cache ``builder()`` on a frozen dataclass instance.

    The workload dataclasses are frozen (value semantics, shareable across
    threads and the process-wide :mod:`repro.perf` cache), but their derived
    geometry arrays are pure functions of the fields, so stashing them in
    ``__dict__`` via ``object.__setattr__`` preserves immutability of the
    *fields* while letting every simulator share one set of arrays.
    """
    try:
        return obj.__dict__[attr]
    except KeyError:
        value = builder()
        object.__setattr__(obj, attr, value)
        return value


def split_remainder(nnz, cols):
    """Spread ``nnz`` products over ``cols`` columns without losing the
    remainder: the first ``nnz % cols`` columns carry one extra product.

    The shared mean-density fallback for heads lacking per-column counts —
    both the cycle simulator's job builders and :meth:`AttentionWorkload.column_cv`
    must distribute identically or the load-imbalance metric diverges from
    the simulated job stream.
    """
    if cols <= 0:
        return np.zeros(0, dtype=np.int64)
    per, rem = divmod(int(nnz), cols)
    counts = np.full(cols, per, dtype=np.int64)
    counts[:rem] += 1
    return counts


@dataclass(frozen=True)
class HeadWorkload:
    """Polarized sparsity statistics for one attention head.

    ``sparser_locality`` is the fraction of sparser-region non-zeros lying in
    a narrow band around the diagonal after reordering: those enjoy streaming
    Q locality (adjacent columns need adjacent Q rows), while the remainder
    triggers scattered per-token Q fetches from DRAM.
    """

    num_tokens: int
    head_dim: int
    num_global_tokens: int
    denser_nnz: int
    sparser_nnz: int
    sparser_index_bytes: int
    sparser_locality: float = 1.0
    sparser_column_nnz: np.ndarray = field(repr=False, default=None)

    @property
    def total_nnz(self):
        return self.denser_nnz + self.sparser_nnz

    @property
    def sparsity(self):
        return 1.0 - self.total_nnz / (self.num_tokens**2)

    @property
    def denser_macs(self):
        """SDDMM MACs in the denser block (processed densely)."""
        return self.num_global_tokens * self.num_tokens * self.head_dim

    @property
    def sparser_macs(self):
        """SDDMM MACs in the sparser remainder (non-zeros only)."""
        return self.sparser_nnz * self.head_dim

    @property
    def spmm_macs(self):
        """S·V MACs (every kept score contributes one dk-length row update)."""
        return self.total_nnz * self.head_dim


@dataclass(frozen=True)
class HeadStatArrays:
    """Per-head statistics of one layer as parallel int64/float64 arrays.

    Built once per :class:`AttentionWorkload` (see
    :meth:`AttentionWorkload.head_stats`) so simulators can replace their
    per-head Python walks with array reductions.
    """

    tokens: np.ndarray
    global_tokens: np.ndarray
    denser_nnz: np.ndarray
    sparser_nnz: np.ndarray
    index_bytes: np.ndarray
    head_dim: np.ndarray
    locality: np.ndarray


@dataclass(frozen=True)
class AttentionWorkload:
    """One attention layer: shapes plus per-head polarized statistics.

    ``streaming_fallback`` records whether the mask has been reordered into
    the polarized layout: only then can the scheduler fall back from
    scattered per-token fetches to an extra sequential stream (the global
    columns are out of the way and the remainder is band-ordered).  The
    pruning-only ablation sets it False.
    """

    num_tokens: int
    num_heads: int
    head_dim: int
    heads: Sequence[HeadWorkload]
    streaming_fallback: bool = True

    #: instance-cache attributes (see :func:`_memoized` and
    #: :func:`repro.perf.memo.instance_memo`) stripped from pickles: they
    #: are pure derived data, and parallel DSE chunks ship the workload
    #: often enough that doubling the payload matters.
    #: ``_cycle_geometry`` is the cycle simulator's per-(workload, config)
    #: table (service times, MAC-line allocations).
    _CACHE_ATTRS = ("_head_stats", "_denser_job_products",
                    "_sparser_job_products", "_cycle_geometry")

    def __getstate__(self):
        state = dict(self.__dict__)
        for attr in self._CACHE_ATTRS:
            state.pop(attr, None)
        return state

    @property
    def embed_dim(self):
        return self.num_heads * self.head_dim

    # ------------------------------------------------------------------
    # Derived geometry arrays (built once, shared by every simulator)
    # ------------------------------------------------------------------
    def head_stats(self) -> HeadStatArrays:
        """Per-head statistics as parallel arrays (cached on the workload)."""
        return _memoized(self, "_head_stats", self._build_head_stats)

    def _build_head_stats(self):
        heads = self.heads
        return HeadStatArrays(
            tokens=np.array([h.num_tokens for h in heads], dtype=np.int64),
            global_tokens=np.array(
                [h.num_global_tokens for h in heads], dtype=np.int64
            ),
            denser_nnz=np.array(
                [h.denser_nnz for h in heads], dtype=np.int64
            ),
            sparser_nnz=np.array(
                [h.sparser_nnz for h in heads], dtype=np.int64
            ),
            index_bytes=np.array(
                [h.sparser_index_bytes for h in heads], dtype=np.int64
            ),
            head_dim=np.array([h.head_dim for h in heads], dtype=np.int64),
            locality=np.array(
                [h.sparser_locality for h in heads], dtype=np.float64
            ),
        )

    def denser_job_products(self) -> np.ndarray:
        """Per-column SDDMM products of the denser engine's job stream:
        every global-token column carries ``num_tokens`` products (cached)."""
        return _memoized(self, "_denser_job_products", self._build_denser_jobs)

    def _build_denser_jobs(self):
        stats = self.head_stats()
        return np.repeat(stats.tokens, stats.global_tokens)

    def sparser_job_products(self) -> np.ndarray:
        """Per-column products of the sparser engine's job stream, in head
        order with empty columns dropped (cached).  Heads without explicit
        per-column counts fall back to :func:`split_remainder`."""
        return _memoized(self, "_sparser_job_products", self._build_sparser_jobs)

    def _build_sparser_jobs(self):
        parts = []
        for head in self.heads:
            col_nnz = head.sparser_column_nnz
            if col_nnz is None:
                col_nnz = split_remainder(
                    head.sparser_nnz, head.num_tokens - head.num_global_tokens
                )
            parts.append(np.asarray(col_nnz, dtype=np.int64))
        if not parts:
            return np.zeros(0, dtype=np.int64)
        merged = np.concatenate(parts)
        return merged[merged > 0]

    @property
    def total_nnz(self):
        stats = self.head_stats()
        return int((stats.denser_nnz + stats.sparser_nnz).sum())

    @property
    def sparsity(self):
        return 1.0 - self.total_nnz / (self.num_heads * self.num_tokens**2)

    @property
    def dense_sddmm_macs(self):
        return self.num_heads * self.num_tokens**2 * self.head_dim

    @property
    def dense_spmm_macs(self):
        return self.dense_sddmm_macs

    @property
    def sddmm_macs(self):
        stats = self.head_stats()
        products = stats.global_tokens * stats.tokens + stats.sparser_nnz
        return int((products * stats.head_dim).sum())

    @property
    def spmm_macs(self):
        stats = self.head_stats()
        return int(
            ((stats.denser_nnz + stats.sparser_nnz) * stats.head_dim).sum()
        )

    @property
    def denser_fraction(self):
        """Fraction of SDDMM MACs in the denser engine's share."""
        total = self.sddmm_macs
        if total == 0:
            return 1.0
        stats = self.head_stats()
        denser = int(
            (stats.global_tokens * stats.tokens * stats.head_dim).sum()
        )
        return denser / total

    def column_cv(self):
        """Coefficient of variation of per-column SDDMM products when the
        whole mask is processed by ONE engine (global-token columns carry
        ``num_tokens`` products each, sparser columns their nnz).

        This is the temporal load imbalance the two-pronged split removes:
        a single K-stationary engine alternates between full columns and
        nearly-empty ones, leaving MAC lines idle (§III-A / §V-A)."""
        products = []
        for head in self.heads:
            products.extend([head.num_tokens] * head.num_global_tokens)
            if head.sparser_column_nnz is not None:
                products.extend(int(x) for x in head.sparser_column_nnz)
            else:
                products.extend(split_remainder(
                    head.sparser_nnz,
                    head.num_tokens - head.num_global_tokens,
                ).tolist())
        arr = np.asarray([p for p in products if p > 0], dtype=np.float64)
        if arr.size == 0 or arr.mean() == 0:
            return 0.0
        return float(arr.std() / arr.mean())

    @property
    def scattered_nnz(self):
        """Sparser non-zeros without streaming locality (scattered fetches)."""
        stats = self.head_stats()
        # np.round matches builtins.round (half-to-even) on float64.
        scattered = np.round(stats.sparser_nnz * (1.0 - stats.locality))
        return int(scattered.astype(np.int64).sum())

    def qk_bytes(self, bytes_per_element):
        """Q plus K footprint of the whole layer."""
        return 2 * self.num_tokens * self.embed_dim * bytes_per_element

    def v_bytes(self, bytes_per_element):
        return self.num_tokens * self.embed_dim * bytes_per_element

    def index_bytes(self):
        return int(self.head_stats().index_bytes.sum())


@dataclass(frozen=True)
class GemmWorkload:
    """Dense GEMM: (m × k) · (k × n) with resident weights of k·n elements."""

    name: str
    m: int
    k: int
    n: int

    @property
    def macs(self):
        return self.m * self.k * self.n

    def weight_bytes(self, bytes_per_element):
        return self.k * self.n * bytes_per_element

    def io_bytes(self, bytes_per_element):
        return (self.m * self.k + self.m * self.n) * bytes_per_element


@dataclass(frozen=True)
class ModelWorkload:
    """All layers of one model, ready for end-to-end simulation."""

    name: str
    attention_layers: Sequence[AttentionWorkload]
    linear_layers: Sequence[GemmWorkload]

    @property
    def attention_macs(self):
        return sum(l.sddmm_macs + l.spmm_macs for l in self.attention_layers)

    @property
    def linear_macs(self):
        return sum(g.macs for g in self.linear_layers)

    @property
    def mean_sparsity(self):
        return float(np.mean([l.sparsity for l in self.attention_layers]))


def _band_locality(sparser_mask, col_offset, band_width=None):
    """Fraction of non-zeros within ±band_width of the (token) diagonal.

    ``sparser_mask`` has shape (N, N - Ngt); global column index of local
    column j is ``col_offset + j``.  Band width defaults to a small fraction
    of N, the reach of the on-chip Q row cache.
    """
    sparser_mask = np.asarray(sparser_mask, dtype=bool)
    n, m = sparser_mask.shape
    if sparser_mask.sum() == 0:
        return 1.0
    if band_width is None:
        band_width = max(2, n // 24)
    rows = np.arange(n)[:, None]
    cols = col_offset + np.arange(m)[None, :]
    band = np.abs(rows - cols) <= band_width
    return float((sparser_mask & band).sum() / sparser_mask.sum())


def attention_workload_from_masks(result: SplitConquerResult, head_dim,
                                  index_format="csc", reordered=True):
    """Build an :class:`AttentionWorkload` from a split-and-conquer result.

    ``reordered=False`` models the pruning-only ablation (§VI-C): the same
    mask without token reordering — no denser block (Ngt = 0), lower
    streaming locality, the whole mask treated as the sparser workload.
    """
    heads = []
    for part in result.partitions:
        if reordered:
            sparser = part.sparser_mask
            ngt = part.num_global_tokens
            denser_nnz = part.denser_nnz
            locality = _band_locality(sparser, col_offset=ngt)
        else:
            # Undo the permutation: use the original-order mask per head.
            inverse = np.argsort(part.permutation)
            original = part.reordered_mask[np.ix_(inverse, inverse)]
            sparser = original
            ngt = 0
            denser_nnz = 0
            locality = _band_locality(original, col_offset=0)
        if index_format == "csc":
            sp = CSCMatrix.from_dense(sparser)
            idx_bytes = sp.index_bytes()
            col_nnz = sp.column_nnz()
        elif index_format == "coo":
            sp = COOMatrix.from_dense(sparser)
            idx_bytes = sp.index_bytes()
            col_nnz = np.asarray(sparser).sum(axis=0)
        else:
            raise ValueError(f"unknown index format {index_format!r}")
        heads.append(
            HeadWorkload(
                num_tokens=part.num_tokens,
                head_dim=head_dim,
                num_global_tokens=ngt,
                denser_nnz=denser_nnz,
                sparser_nnz=int(np.asarray(sparser).sum()),
                sparser_index_bytes=idx_bytes,
                sparser_locality=locality,
                sparser_column_nnz=col_nnz,
            )
        )
    return AttentionWorkload(
        num_tokens=result.num_tokens,
        num_heads=result.num_heads,
        head_dim=head_dim,
        heads=heads,
        streaming_fallback=reordered,
    )


def dense_attention_workload(num_tokens, num_heads, head_dim):
    """Fully dense attention (the unpruned baseline / reorder-only point).

    Modeled as one all-dense "denser" block: every column is a global token,
    so streaming is perfectly regular."""
    heads = [
        HeadWorkload(
            num_tokens=num_tokens,
            head_dim=head_dim,
            num_global_tokens=num_tokens,
            denser_nnz=num_tokens * num_tokens,
            sparser_nnz=0,
            sparser_index_bytes=0,
            sparser_locality=1.0,
        )
        for _ in range(num_heads)
    ]
    return AttentionWorkload(
        num_tokens=num_tokens, num_heads=num_heads, head_dim=head_dim, heads=heads,
    )


def synthetic_attention_workload(num_tokens, num_heads, head_dim,
                                 sparsity=0.9, theta_d=0.25, seed=0,
                                 index_format="csc", reordered=True):
    """Paper-scale workload from a synthetic ViT attention map.

    ``sparsity=None`` returns the fully dense workload.
    """
    if sparsity is None:
        return dense_attention_workload(num_tokens, num_heads, head_dim)
    maps = synthetic_vit_attention(num_tokens, num_heads=num_heads, seed=seed)
    result = split_and_conquer(maps, target_sparsity=sparsity, theta_d=theta_d)
    return attention_workload_from_masks(result, head_dim,
                                         index_format=index_format,
                                         reordered=reordered)


def model_workload(config: ModelConfig, sparsity=0.9, theta_d=0.25, seed=0,
                   index_format="csc", reordered=True):
    """Full paper-scale workload for one model config.

    Attention masks come from per-layer synthetic ViT attention maps (seeded
    by layer so per-layer/head variation is present); dense GEMMs cover QKV
    generation, the output projection, and both MLP layers.
    """
    attention_layers = []
    linear_layers = []
    layer_index = 0
    for stage in config.paper_stages:
        n, h, dk, d = stage.num_tokens, stage.num_heads, stage.head_dim, stage.embed_dim
        hidden = int(d * config.mlp_ratio)
        for _ in range(stage.depth):
            attention_layers.append(
                synthetic_attention_workload(
                    n, h, dk, sparsity=sparsity, theta_d=theta_d,
                    seed=seed + 101 * layer_index, index_format=index_format,
                    reordered=reordered,
                )
            )
            linear_layers.extend(
                [
                    GemmWorkload(f"l{layer_index}.qkv", n, d, 3 * d),
                    GemmWorkload(f"l{layer_index}.proj", n, d, d),
                    GemmWorkload(f"l{layer_index}.fc1", n, d, hidden),
                    GemmWorkload(f"l{layer_index}.fc2", n, hidden, d),
                ]
            )
            layer_index += 1
    return ModelWorkload(
        name=config.name,
        attention_layers=attention_layers,
        linear_layers=linear_layers,
    )
