"""Hardware configuration for the ViTCoD accelerator (paper §VI-A).

Published design point: 3 mm² in 28 nm, 512 MACs organised as 64 MAC lines of
8 MACs, 500 MHz core clock, DDR4-2400 at 76.8 GB/s, 320 KB SRAM split into
Act GB0/GB1 (Q/K/S/V-or-input 128 KB, index 20 KB, output 108 KB) and a
64 KB weight global buffer, 323.9 mW.

Energy constants are per-operation estimates for a 28/45 nm-class process
(Horowitz ISSCC'14 style numbers scaled to 16-bit datapaths).  Absolute
joules are not the claim — ratios between designs that move more or fewer
bytes are (Fig. 19's 9.8× energy-efficiency claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["EnergyTable", "HardwareConfig", "VITCOD_DEFAULT"]


@dataclass(frozen=True)
class EnergyTable:
    """Per-operation energy in picojoules."""

    mac_pj: float = 0.5  # one 16-bit multiply-accumulate
    sram_byte_pj: float = 2.5  # on-chip global-buffer access
    dram_byte_pj: float = 30.0  # off-chip DDR4 access
    softmax_op_pj: float = 2.0  # exponent/divide via LUT datapath
    comparator_pj: float = 0.3  # top-k style comparison (SpAtten)
    # Background power (leakage, clock tree, control) charged per busy cycle;
    # 400 pJ/cycle ≈ 200 mW at 500 MHz, consistent with the paper's 323.9 mW
    # envelope once dynamic MAC/SRAM activity is added.
    static_pj_per_cycle: float = 400.0


@dataclass(frozen=True)
class HardwareConfig:
    """One accelerator design point."""

    name: str = "vitcod"
    num_mac_lines: int = 64
    macs_per_line: int = 8
    frequency_hz: float = 500e6
    dram_bandwidth_bytes_per_s: float = 76.8e9
    bytes_per_element: int = 2  # 16-bit activations
    # SRAM partition (bytes), per paper §VI-A.
    act_buffer_bytes: int = 128 * 1024  # Q/K/S/V or input buffer
    index_buffer_bytes: int = 20 * 1024
    output_buffer_bytes: int = 108 * 1024
    weight_buffer_bytes: int = 64 * 1024
    softmax_lanes: int = 8  # elements the softmax unit retires per cycle
    energy: EnergyTable = field(default_factory=EnergyTable)

    @property
    def total_macs(self):
        return self.num_mac_lines * self.macs_per_line

    @property
    def bytes_per_cycle(self):
        return self.dram_bandwidth_bytes_per_s / self.frequency_hz

    @property
    def peak_gops(self):
        """Peak throughput in GOPS, one op per MAC — the paper's Fig. 3
        convention (512 MACs × 500 MHz = 256 GOPS compute roof)."""
        return self.total_macs * self.frequency_hz / 1e9

    def cycles_to_seconds(self, cycles):
        return cycles / self.frequency_hz

    def scaled(self, factor, name=None):
        """Scale compute + bandwidth + buffers by ``factor``.

        Used when benchmarking against large-batch GPUs: the paper scales the
        accelerator's resources to comparable peak throughput (§VI-A,
        following DOTA).
        """
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            num_mac_lines=max(1, int(round(self.num_mac_lines * factor))),
            softmax_lanes=max(1, int(round(self.softmax_lanes * factor))),
            dram_bandwidth_bytes_per_s=self.dram_bandwidth_bytes_per_s * factor,
            act_buffer_bytes=int(self.act_buffer_bytes * factor),
            index_buffer_bytes=int(self.index_buffer_bytes * factor),
            output_buffer_bytes=int(self.output_buffer_bytes * factor),
            weight_buffer_bytes=int(self.weight_buffer_bytes * factor),
        )


#: The paper's published design point.
VITCOD_DEFAULT = HardwareConfig()
