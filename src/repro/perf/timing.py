"""Small wall-clock timing helpers for the perf microbenchmarks.

Measured, tracked numbers — not estimates — drive this repo's performance
work: ``benchmarks/perf`` times the hot paths with :func:`benchit` and
records the results in ``BENCH_perf.json`` so each PR leaves a trajectory.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List

__all__ = ["Timer", "BenchResult", "benchit"]


class Timer:
    """Context-manager stopwatch: ``with Timer() as t: ...; t.seconds``."""

    def __init__(self):
        self.seconds = 0.0
        self._start = None

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.seconds = time.perf_counter() - self._start
        return False


@dataclass(frozen=True)
class BenchResult:
    """Wall-clock samples of one microbenchmark."""

    name: str
    times: List[float] = field(repr=False)
    repeats: int = 0

    @property
    def best(self):
        return min(self.times)

    @property
    def mean(self):
        return sum(self.times) / len(self.times)

    def to_dict(self):
        """Machine-readable record for ``BENCH_perf.json``."""
        return {
            "name": self.name,
            "repeats": self.repeats,
            "best_s": self.best,
            "mean_s": self.mean,
            "times_s": list(self.times),
        }


def benchit(fn, *, name=None, repeats=5, warmup=1) -> BenchResult:
    """Time ``fn()`` ``repeats`` times after ``warmup`` discarded calls.

    ``best`` (the minimum) is the headline number: wall-clock noise is
    strictly additive, so the minimum is the least-noisy estimate of the
    true cost.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        fn()
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return BenchResult(name=name or getattr(fn, "__name__", "bench"),
                       times=times, repeats=repeats)
