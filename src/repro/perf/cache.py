"""Keyed memoization for expensive, pure workload constructors.

:func:`repro.hw.workload.model_workload` and
:func:`~repro.hw.workload.synthetic_attention_workload` are deterministic
in their full parameter tuple (the synthetic attention maps are seeded), so
their results can be shared freely: the workload dataclasses are frozen and
nothing downstream mutates them.  ``cached_model_workload`` /
``cached_synthetic_attention_workload`` route construction through a
process-wide :class:`KeyedCache`; DSE sweeps, the experiment harness and
the benchmark suite all hit the same entries.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..hw.workload import model_workload, synthetic_attention_workload
from ..models.config import ModelConfig, get_config
from .memo import instance_memo

__all__ = [
    "CacheStats",
    "KeyedCache",
    "instance_memo",
    "workload_cache",
    "cached_synthetic_attention_workload",
    "cached_model_workload",
    "clear_workload_cache",
    "workload_cache_stats",
    "seed_worker_workload",
    "seeded_workload",
]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss counters of one :class:`KeyedCache`."""

    hits: int
    misses: int
    size: int

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class KeyedCache:
    """Thread-safe memoization cache keyed by hashable tuples.

    ``maxsize=None`` (the default) means unbounded; otherwise entries are
    evicted least-recently-used.  Builders run outside the lock would risk
    duplicate construction under concurrency; workload construction is
    expensive enough that we instead hold the lock while building — callers
    on other threads for the *same* key then wait and share the result,
    which is exactly the desired behaviour for a parallel DSE warm-up.
    """

    def __init__(self, maxsize=None):
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be None or >= 1")
        self.maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0

    def get_or_build(self, key, builder):
        """Return the cached value for ``key``, building it on first use."""
        with self._lock:
            if key in self._entries:
                self._hits += 1
                self._entries.move_to_end(key)
                return self._entries[key]
            self._misses += 1
            value = builder()
            self._entries[key] = value
            if self.maxsize is not None:
                while len(self._entries) > self.maxsize:
                    self._entries.popitem(last=False)
            return value

    def clear(self):
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(hits=self._hits, misses=self._misses,
                              size=len(self._entries))

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries


#: Process-wide cache shared by every ``cached_*`` constructor.
workload_cache = KeyedCache()


def cached_synthetic_attention_workload(num_tokens, num_heads, head_dim,
                                        sparsity=0.9, theta_d=0.25, seed=0,
                                        index_format="csc", reordered=True,
                                        cache: KeyedCache = None):
    """Memoised :func:`~repro.hw.workload.synthetic_attention_workload`."""
    cache = cache if cache is not None else workload_cache
    key = ("synthetic_attention_workload", num_tokens, num_heads, head_dim,
           sparsity, theta_d, seed, index_format, reordered)
    return cache.get_or_build(key, lambda: synthetic_attention_workload(
        num_tokens, num_heads, head_dim, sparsity=sparsity, theta_d=theta_d,
        seed=seed, index_format=index_format, reordered=reordered,
    ))


def cached_model_workload(config, sparsity=0.9, theta_d=0.25, seed=0,
                          index_format="csc", reordered=True,
                          cache: KeyedCache = None):
    """Memoised :func:`~repro.hw.workload.model_workload`.

    ``config`` may be a :class:`~repro.models.config.ModelConfig` or a
    registry name (``"deit-base"``).
    """
    if not isinstance(config, ModelConfig):
        config = get_config(config)
    cache = cache if cache is not None else workload_cache
    key = ("model_workload", config, sparsity, theta_d, seed, index_format,
           reordered)
    return cache.get_or_build(key, lambda: model_workload(
        config, sparsity=sparsity, theta_d=theta_d, seed=seed,
        index_format=index_format, reordered=reordered,
    ))


#: Workload pinned in this process by a pool initializer (see
#: :func:`seed_worker_workload`); ``None`` outside seeded pool workers.
_worker_workload = None


def seed_worker_workload(workload):
    """Pin ``workload`` as this process's sweep workload (pool initializer).

    Parallel DSE sweeps used to pickle the workload into every chunk task,
    so each chunk re-derived the instance-memoized job geometry
    (:meth:`~repro.hw.workload.AttentionWorkload.head_stats` and friends are
    stripped from pickles) — cycle-accurate sweeps paid that rebuild once
    per chunk per worker.  Passing this function as the pool's
    ``initializer`` (with the workload as its argument) ships the workload
    ONCE per worker; chunk tasks then reference it via
    :func:`seeded_workload` and the memoized geometry is shared by every
    chunk the worker runs.
    """
    global _worker_workload
    _worker_workload = workload


def seeded_workload():
    """The workload pinned by :func:`seed_worker_workload`, or ``None``."""
    return _worker_workload


def clear_workload_cache():
    """Drop every entry of the process-wide workload cache."""
    workload_cache.clear()


def workload_cache_stats() -> CacheStats:
    """Hit/miss counters of the process-wide workload cache."""
    return workload_cache.stats()
