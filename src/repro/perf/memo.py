"""Per-instance keyed memoization (dependency-free perf primitive).

:func:`instance_memo` generalises the single-value ``_memoized`` helper
of :mod:`repro.hw.workload`: instead of caching one derived value per
attribute, it caches a *table* of ``key -> value`` on the instance, so a
frozen workload can hold derived geometry per *hardware configuration* —
the cycle simulator's per-(workload, config) line allocations and DRAM
service times, which dominate cheap DSE points when the workload repeats
across the grid.

This module deliberately imports nothing from :mod:`repro` (the cycle
simulator imports it while :mod:`repro.perf`'s own ``__init__`` may still
be executing — see the import chain through ``repro.hw.workload``).
"""

from __future__ import annotations

__all__ = ["instance_memo"]


def instance_memo(obj, slot, key, builder):
    """Return ``builder()`` memoized on ``obj`` under ``(slot, key)``.

    The table lives in the instance ``__dict__`` via
    ``object.__setattr__`` — frozen dataclasses stay immutable in their
    *fields* while sharing pure derived data, exactly the convention of
    ``repro.hw.workload._memoized``.  Owners that are pickled must strip
    the slot (list it in the class's pickle strip-list): the table is
    derived data keyed by live configuration, not payload.

    Builders must be pure functions of ``obj`` and ``key``.  Dict reads
    and writes are atomic under the GIL; two threads racing on a fresh
    key may both build the same value and one write wins, which is
    harmless for pure builders.
    """
    table = obj.__dict__.get(slot)
    if table is None:
        table = {}
        object.__setattr__(obj, slot, table)
    try:
        return table[key]
    except KeyError:
        value = builder()
        table[key] = value
        return value
