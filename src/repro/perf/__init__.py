"""Performance layer: workload memoization and timing utilities.

Workload construction (split-and-conquer mask generation) is the single
most expensive step in the repo's hot paths — a DSE sweep or the benchmark
suite would otherwise re-polarize identical masks hundreds of times.  This
package provides a process-wide keyed cache over the pure workload
constructors plus the small timing helpers the ``benchmarks/perf``
microbenchmarks are built on.
"""

from .cache import (
    CacheStats,
    KeyedCache,
    cached_model_workload,
    instance_memo,
    cached_synthetic_attention_workload,
    clear_workload_cache,
    seed_worker_workload,
    seeded_workload,
    workload_cache,
    workload_cache_stats,
)
from .timing import BenchResult, Timer, benchit

__all__ = [
    "CacheStats",
    "KeyedCache",
    "instance_memo",
    "cached_model_workload",
    "cached_synthetic_attention_workload",
    "clear_workload_cache",
    "seed_worker_workload",
    "seeded_workload",
    "workload_cache",
    "workload_cache_stats",
    "BenchResult",
    "Timer",
    "benchit",
]
