"""Pruning with fixed masks — the first half of Algorithm 1.

For each query row of an averaged, normalised attention map, keep the
highest-valued attention scores until their cumulative sum reaches the
information-quantity threshold ``θp``, and prune the rest.  The result is a
binary mask that stays **fixed** during finetuning and inference (§IV-B).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "prune_attention_map",
    "mask_sparsity",
    "threshold_for_sparsity",
    "mask_for_sparsity",
]


def prune_attention_map(attention_map, theta_p, min_keep=1):
    """Generate the fixed binary mask for one attention map.

    Parameters
    ----------
    attention_map:
        Array of shape (N, N) or (H, N, N); rows should be (approximately)
        normalised attention probabilities.
    theta_p:
        Information-quantity threshold in (0, 1]: per row, the smallest set
        of largest scores whose cumulative (renormalised) sum reaches
        ``theta_p`` is kept.
    min_keep:
        Lower bound on kept entries per row (≥1 so softmax stays defined).

    Returns
    -------
    ndarray of bool, same shape
        True where attention is kept ("1" in the paper's mask).
    """
    attention_map = np.asarray(attention_map, dtype=np.float64)
    if not 0.0 < theta_p <= 1.0:
        raise ValueError(f"theta_p must be in (0, 1], got {theta_p}")
    if min_keep < 1:
        raise ValueError("min_keep must be >= 1")
    if attention_map.ndim == 3:
        return np.stack(
            [prune_attention_map(a, theta_p, min_keep) for a in attention_map]
        )
    if attention_map.ndim != 2:
        raise ValueError(f"expected 2-D or 3-D map, got shape {attention_map.shape}")

    n = attention_map.shape[-1]
    min_keep = min(min_keep, n)
    # Renormalise rows so theta_p is a fraction of each row's total mass.
    row_sums = attention_map.sum(axis=-1, keepdims=True)
    row_sums = np.where(row_sums <= 0, 1.0, row_sums)
    probs = attention_map / row_sums

    order = np.argsort(-probs, axis=-1, kind="stable")  # descending
    sorted_probs = np.take_along_axis(probs, order, axis=-1)
    cumulative = np.cumsum(sorted_probs, axis=-1)
    # Keep entries strictly before the cumulative sum first reaches theta_p,
    # plus the entry that crosses it (Alg. 1 lines 2-5 accumulate then stop).
    keep_counts = np.argmax(cumulative >= theta_p - 1e-12, axis=-1) + 1
    # Rows whose total mass never reaches theta_p keep everything.
    keep_counts = np.where(cumulative[:, -1] < theta_p - 1e-12, n, keep_counts)
    keep_counts = np.maximum(keep_counts, min_keep)

    ranks = np.empty_like(order)
    np.put_along_axis(ranks, order, np.arange(n)[None, :], axis=-1)
    return ranks < keep_counts[:, None]


def mask_sparsity(mask):
    """Fraction of pruned (zero) entries in a binary mask."""
    mask = np.asarray(mask, dtype=bool)
    return 1.0 - mask.mean()


def threshold_for_sparsity(attention_map, target_sparsity, tol=5e-3, max_iter=60):
    """Bisect ``θp`` so the pruned mask hits ``target_sparsity``.

    The paper sweeps sparsity ratios {50…95}% (§VI-C); this inverts the
    θp → sparsity map, which is monotone (larger θp keeps more entries).

    The per-row sort and cumulative sums do not depend on θp, so they are
    hoisted out of the bisection loop: each iteration only re-derives the
    per-row keep counts from the precomputed cumulative mass, exactly as
    :func:`prune_attention_map` (with its default ``min_keep=1``) would.
    """
    if not 0.0 <= target_sparsity < 1.0:
        raise ValueError(f"target_sparsity must be in [0, 1), got {target_sparsity}")

    attention_map = np.asarray(attention_map, dtype=np.float64)
    rows = attention_map.reshape(-1, attention_map.shape[-1])
    n = rows.shape[-1]
    row_sums = rows.sum(axis=-1, keepdims=True)
    row_sums = np.where(row_sums <= 0, 1.0, row_sums)
    probs = rows / row_sums
    cumulative = np.cumsum(
        np.take_along_axis(probs, np.argsort(-probs, axis=-1, kind="stable"),
                           axis=-1),
        axis=-1,
    )
    total_mass = cumulative[:, -1]

    def sparsity_at(theta):
        keep_counts = np.argmax(cumulative >= theta - 1e-12, axis=-1) + 1
        keep_counts = np.where(total_mass < theta - 1e-12, n, keep_counts)
        return 1.0 - keep_counts.sum() / cumulative.size

    lo, hi = 1e-6, 1.0
    best = hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        sparsity = sparsity_at(mid)
        if abs(sparsity - target_sparsity) <= tol:
            return mid
        if sparsity > target_sparsity:
            lo = mid  # too sparse → keep more mass
        else:
            hi = mid
        best = mid
    return best


def mask_for_sparsity(attention_map, target_sparsity, tol=5e-3):
    """Convenience: mask whose sparsity is close to ``target_sparsity``."""
    theta_p = threshold_for_sparsity(attention_map, target_sparsity, tol=tol)
    return prune_attention_map(attention_map, theta_p)
