"""The unified split-and-conquer algorithm (Algorithm 1, end to end).

``split_and_conquer`` takes an averaged attention map, prunes it with a fixed
mask, reorders tokens per head so global tokens lead, and returns the
polarized denser/sparser partition that drives both finetuning (mask
installation) and the accelerator's workload split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .pruning import prune_attention_map, mask_sparsity, threshold_for_sparsity
from .reordering import reorder_attention_map

__all__ = ["HeadPartition", "SplitConquerResult", "split_and_conquer",
           "split_and_conquer_layers"]


@dataclass(frozen=True)
class HeadPartition:
    """Polarized workload of a single attention head."""

    reordered_mask: np.ndarray  # (N, N) bool, tokens permuted
    permutation: np.ndarray  # (N,) new -> old token index
    num_global_tokens: int

    @property
    def num_tokens(self):
        return self.reordered_mask.shape[-1]

    @property
    def denser_mask(self):
        """Columns belonging to the denser (global-token) block."""
        return self.reordered_mask[:, : self.num_global_tokens]

    @property
    def sparser_mask(self):
        """Columns belonging to the sparser (diagonal-ish) remainder."""
        return self.reordered_mask[:, self.num_global_tokens :]

    @property
    def denser_density(self):
        block = self.denser_mask
        return float(block.mean()) if block.size else 0.0

    @property
    def sparser_density(self):
        block = self.sparser_mask
        return float(block.mean()) if block.size else 0.0

    @property
    def denser_nnz(self):
        return int(self.denser_mask.sum())

    @property
    def sparser_nnz(self):
        return int(self.sparser_mask.sum())


@dataclass
class SplitConquerResult:
    """Output of Algorithm 1 for one attention layer (all heads)."""

    mask: np.ndarray  # (H, N, N) pruned mask in the ORIGINAL token order
    partitions: List[HeadPartition]
    theta_p: float
    theta_d: float

    @property
    def num_heads(self):
        return self.mask.shape[0]

    @property
    def num_tokens(self):
        return self.mask.shape[-1]

    @property
    def sparsity(self):
        return mask_sparsity(self.mask)

    @property
    def num_global_tokens(self):
        return np.array([p.num_global_tokens for p in self.partitions])

    def reordered_masks(self):
        return np.stack([p.reordered_mask for p in self.partitions])

    def masked_map(self, attention_map):
        """``m ⊙ A`` in the original token order (finetuning target)."""
        return np.asarray(attention_map) * self.mask


def split_and_conquer(
    attention_map,
    theta_p: Optional[float] = None,
    theta_d: float = 0.6,
    target_sparsity: Optional[float] = None,
    min_keep: int = 1,
):
    """Run Algorithm 1 on one layer's averaged attention map.

    Exactly one of ``theta_p`` (the paper's information-quantity threshold)
    or ``target_sparsity`` (used for the paper's sparsity sweeps) must be
    given.  ``theta_d`` is the dense threshold: a fraction of N (when < 1)
    or an absolute per-head column count.

    Parameters
    ----------
    attention_map:
        (N, N) or (H, N, N) averaged, row-normalised attention map.

    Returns
    -------
    SplitConquerResult
    """
    attention_map = np.asarray(attention_map, dtype=np.float64)
    if attention_map.ndim == 2:
        attention_map = attention_map[None]
    if attention_map.ndim != 3:
        raise ValueError(f"expected (H, N, N) map, got shape {attention_map.shape}")

    if (theta_p is None) == (target_sparsity is None):
        raise ValueError("provide exactly one of theta_p or target_sparsity")
    if theta_p is None:
        theta_p = threshold_for_sparsity(attention_map, target_sparsity)

    mask = prune_attention_map(attention_map, theta_p, min_keep=min_keep)

    partitions = []
    for head_mask in mask:
        reordered, info = reorder_attention_map(head_mask, theta_d)
        partitions.append(
            HeadPartition(
                reordered_mask=reordered,
                permutation=info.permutation,
                num_global_tokens=info.num_global_tokens,
            )
        )
    return SplitConquerResult(
        mask=mask, partitions=partitions, theta_p=theta_p, theta_d=theta_d
    )


def split_and_conquer_layers(attention_maps, **kwargs):
    """Apply :func:`split_and_conquer` to a list of per-layer maps."""
    return [split_and_conquer(a, **kwargs) for a in attention_maps]
