"""Attention-map reordering — the second half of Algorithm 1.

Tokens whose mask *column* has more non-zeros than a threshold ``θd`` are
**global tokens**: keys that (almost) every query attends to.  Reordering
moves them to the front so each head's mask polarizes into a denser block of
``Ngt`` leftmost columns plus a sparser (mostly diagonal) remainder — the two
workload levels the accelerator's two engines consume (§IV-B, Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ReorderResult", "find_global_tokens", "reorder_attention_map"]


@dataclass(frozen=True)
class ReorderResult:
    """Output of the reordering step for one (H, N, N) or (N, N) mask."""

    permutation: np.ndarray  # token order: new index -> old index
    num_global_tokens: int


def find_global_tokens(mask, theta_d):
    """Boolean vector marking global-token columns (‖column‖₀ > θd).

    ``theta_d`` may be an absolute count or, if < 1, a fraction of N.
    For multi-head masks the column population is summed over heads, matching
    the per-layer reordering the paper applies (one token order per layer).
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim == 3:
        column_nnz = mask.sum(axis=(0, 1))
        n = mask.shape[-1]
        threshold = (theta_d * mask.shape[0] if theta_d >= 1
                     else theta_d * mask.shape[0] * n)
    elif mask.ndim == 2:
        column_nnz = mask.sum(axis=0)
        n = mask.shape[-1]
        threshold = theta_d if theta_d >= 1 else theta_d * n
    else:
        raise ValueError(f"expected 2-D or 3-D mask, got shape {mask.shape}")
    return column_nnz > threshold


def reorder_attention_map(mask, theta_d, attention_map=None):
    """Reorder tokens so global tokens come first (Alg. 1 lines 7-14).

    Parameters
    ----------
    mask:
        Binary mask, (N, N) or (H, N, N).
    theta_d:
        Dense threshold for global-token detection (count, or fraction of N).
    attention_map:
        Optional real-valued map permuted alongside the mask.

    Returns
    -------
    (reordered_mask, ReorderResult) or
    (reordered_mask, reordered_map, ReorderResult) when ``attention_map``
    is given.  Both rows and columns are permuted — reordering re-indexes the
    *tokens*, and the same order applies to queries and keys so the attention
    semantics are preserved up to relabelling.
    """
    mask = np.asarray(mask, dtype=bool)
    is_global = find_global_tokens(mask, theta_d)
    n = mask.shape[-1]
    indices = np.arange(n)
    # Stable partition: global tokens first, original order preserved within
    # each group (the SWAP loop of Alg. 1 walks i left-to-right).
    permutation = np.concatenate([indices[is_global], indices[~is_global]])
    num_global = int(is_global.sum())

    reordered_mask = _permute_tokens(mask, permutation)
    result = ReorderResult(permutation=permutation, num_global_tokens=num_global)
    if attention_map is None:
        return reordered_mask, result
    reordered_map = _permute_tokens(
        np.asarray(attention_map, dtype=np.float64), permutation
    )
    return reordered_mask, reordered_map, result


def _permute_tokens(array, permutation):
    """Apply a token permutation to the trailing two (row, column) axes."""
    out = np.take(array, permutation, axis=-2)
    return np.take(out, permutation, axis=-1)
