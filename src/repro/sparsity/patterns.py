"""Synthetic attention-map generators at paper scale.

Training a DeiT-Base (197 tokens, 12×12 heads) in pure numpy is infeasible,
but the hardware evaluation only needs attention maps with the *structure*
real ViTs exhibit (paper Figs. 2 & 8): probability mass concentrated on a
diagonal band (adjacent-patch correlation) plus a few dense global-token
columns, over a weak random background.  These generators produce such maps
deterministically for any (heads, tokens) so every model in Table/Fig. 15
gets a faithful workload without GPUs or ImageNet.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "synthetic_vit_attention",
    "synthetic_nlp_attention",
    "diagonal_band_mask",
    "random_mask",
]


def synthetic_vit_attention(
    num_tokens,
    num_heads=1,
    num_global_tokens=None,
    band_width=None,
    global_strength=6.0,
    band_strength=4.0,
    background=0.25,
    seed=0,
):
    """ViT-like averaged attention maps: diagonal band + global columns.

    Returns a row-normalised array of shape (num_heads, N, N).  Head h gets
    its own randomly-drawn global-token set and slight band-width jitter so
    per-head variation (the reason the accelerator needs dynamic PE
    allocation, §V-B) is present.
    """
    rng = np.random.default_rng(seed)
    n = num_tokens
    if num_global_tokens is None:
        num_global_tokens = max(1, int(round(0.06 * n)))
    if band_width is None:
        band_width = max(1, int(round(0.04 * n)))

    maps = np.empty((num_heads, n, n))
    idx = np.arange(n)
    for h in range(num_heads):
        width = max(1, band_width + int(rng.integers(-1, 2)))
        dist = np.abs(idx[:, None] - idx[None, :])
        band = band_strength * np.exp(-((dist / width) ** 2))
        base = background * rng.random((n, n))
        scores = base + band
        k = max(1, num_global_tokens + int(rng.integers(-1, 2)))
        global_cols = rng.choice(n, size=min(k, n), replace=False)
        scores[:, global_cols] += global_strength * (
            0.75 + 0.5 * rng.random(len(global_cols)))
        maps[h] = scores / scores.sum(axis=-1, keepdims=True)
    return maps


def synthetic_nlp_attention(num_tokens, num_heads=1, seed=0, heavy_tail=1.2):
    """NLP-like attention: content-dependent, scattered heavy-tailed mass.

    Used by the §VI-B NLP discussion: without positional regularity, fixed
    masks lose accuracy faster, and the non-zeros do not polarize.
    """
    rng = np.random.default_rng(seed)
    scores = rng.pareto(heavy_tail, size=(num_heads, num_tokens, num_tokens)) + 0.05
    return scores / scores.sum(axis=-1, keepdims=True)


def diagonal_band_mask(num_tokens, band_width=1):
    """Pure diagonal-band binary mask (the paper's worst-case reuse pattern)."""
    idx = np.arange(num_tokens)
    return np.abs(idx[:, None] - idx[None, :]) <= band_width


def random_mask(num_tokens, density, num_heads=1, seed=0, ensure_rows=True):
    """Unstructured random mask at a given density (SpGEMM-style pattern)."""
    if not 0.0 < density <= 1.0:
        raise ValueError(f"density must be in (0, 1], got {density}")
    rng = np.random.default_rng(seed)
    mask = rng.random((num_heads, num_tokens, num_tokens)) < density
    if ensure_rows:
        empty = ~mask.any(axis=-1)
        heads, rows = np.nonzero(empty)
        cols = rng.integers(0, num_tokens, size=len(rows))
        mask[heads, rows, cols] = True
    return mask
