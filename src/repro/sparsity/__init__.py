"""ViTCoD's split-and-conquer sparsity algorithm (Algorithm 1)."""

from .pruning import (
    prune_attention_map,
    mask_sparsity,
    threshold_for_sparsity,
    mask_for_sparsity,
)
from .reordering import ReorderResult, find_global_tokens, reorder_attention_map
from .split_conquer import (
    HeadPartition,
    SplitConquerResult,
    split_and_conquer,
    split_and_conquer_layers,
)
from .patterns import (
    synthetic_vit_attention,
    synthetic_nlp_attention,
    diagonal_band_mask,
    random_mask,
)
from . import metrics
from . import schedules

__all__ = [
    "prune_attention_map",
    "mask_sparsity",
    "threshold_for_sparsity",
    "mask_for_sparsity",
    "ReorderResult",
    "find_global_tokens",
    "reorder_attention_map",
    "HeadPartition",
    "SplitConquerResult",
    "split_and_conquer",
    "split_and_conquer_layers",
    "synthetic_vit_attention",
    "synthetic_nlp_attention",
    "diagonal_band_mask",
    "random_mask",
    "metrics",
    "schedules",
]
