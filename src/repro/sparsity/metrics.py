"""Metrics quantifying mask structure: sparsity, polarization, balance, reuse.

These back the paper's qualitative claims with numbers:

* *polarization* — how cleanly the mask separates into a dense block plus a
  very sparse remainder (Fig. 8's visual effect);
* *workload imbalance* — variation of per-column non-zeros, the problem the
  two-pronged engine + dynamic allocation solves (§V-B);
* *reuse factors* — how often a loaded K (or Q) vector participates in a MAC,
  the quantity the roofline analysis (Fig. 3) is about.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sparsity",
    "density",
    "polarization_score",
    "column_imbalance",
    "k_reuse_factor",
    "q_reuse_factor",
    "diagonal_fraction",
    "mask_summary",
]


def _as_mask(mask):
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim == 2:
        mask = mask[None]
    if mask.ndim != 3:
        raise ValueError(f"expected (N,N) or (H,N,N) mask, got {mask.shape}")
    return mask


def sparsity(mask):
    """Fraction of zero entries."""
    return float(1.0 - np.asarray(mask, dtype=bool).mean())


def density(mask):
    return float(np.asarray(mask, dtype=bool).mean())


def polarization_score(mask, num_global_tokens):
    """Contrast between denser-block density and sparser-region density.

    1.0 = perfect polarization (dense block fully dense, remainder empty);
    0.0 = no contrast.  ``num_global_tokens`` may be scalar or per-head.
    """
    mask = _as_mask(mask)
    ngt = np.broadcast_to(np.asarray(num_global_tokens), (mask.shape[0],))
    scores = []
    for head_mask, n_global in zip(mask, ngt):
        n_global = int(n_global)
        dense_part = head_mask[:, :n_global]
        sparse_part = head_mask[:, n_global:]
        d_dense = dense_part.mean() if dense_part.size else 1.0
        d_sparse = sparse_part.mean() if sparse_part.size else 0.0
        scores.append(d_dense - d_sparse)
    return float(np.mean(scores))


def column_imbalance(mask):
    """Coefficient of variation of per-column non-zero counts (per head, avg).

    High imbalance ⇒ temporal load imbalance for a K-stationary schedule.
    """
    mask = _as_mask(mask)
    cvs = []
    for head_mask in mask:
        col = head_mask.sum(axis=0).astype(np.float64)
        mean = col.mean()
        cvs.append(0.0 if mean == 0 else col.std() / mean)
    return float(np.mean(cvs))


def k_reuse_factor(mask):
    """Average MACs per loaded K vector = mean non-zeros per *used* column."""
    mask = _as_mask(mask)
    col = mask.sum(axis=1).astype(np.float64)  # (H, N) nnz per column
    used = col > 0
    return float(col[used].mean()) if used.any() else 0.0


def q_reuse_factor(mask):
    """Average MACs per loaded Q vector = mean non-zeros per *used* row."""
    mask = _as_mask(mask)
    row = mask.sum(axis=2).astype(np.float64)
    used = row > 0
    return float(row[used].mean()) if used.any() else 0.0


def diagonal_fraction(mask, band_width=2):
    """Fraction of kept entries lying within ``band_width`` of the diagonal."""
    mask = _as_mask(mask)
    n = mask.shape[-1]
    idx = np.arange(n)
    band = np.abs(idx[:, None] - idx[None, :]) <= band_width
    total = mask.sum()
    if total == 0:
        return 0.0
    return float((mask & band[None]).sum() / total)


def mask_summary(mask, num_global_tokens=None):
    """Dict of all metrics for reporting."""
    out = {
        "sparsity": sparsity(mask),
        "column_imbalance": column_imbalance(mask),
        "k_reuse": k_reuse_factor(mask),
        "q_reuse": q_reuse_factor(mask),
        "diagonal_fraction": diagonal_fraction(mask),
    }
    if num_global_tokens is not None:
        out["polarization"] = polarization_score(mask, num_global_tokens)
    return out
