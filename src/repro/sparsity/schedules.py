"""Structured sparse-attention patterns from the related work (§II).

The paper positions its *learned, polarized* fixed masks against the
hand-designed NLP patterns — BigBird (window + global + random), Longformer
(window + task globals), BlockBERT (block sparsity), and strided patterns.
These generators build those masks at any size so the ablation benches can
compare how well each pattern class polarizes and how it performs on the
ViTCoD accelerator versus on its intended substrate.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "window_mask",
    "global_mask",
    "random_pattern_mask",
    "bigbird_mask",
    "longformer_mask",
    "block_mask",
    "strided_mask",
    "pattern_zoo",
]


def window_mask(num_tokens, window=3):
    """Sliding-window (local) attention: |i - j| <= window."""
    if window < 0:
        raise ValueError("window must be non-negative")
    idx = np.arange(num_tokens)
    return np.abs(idx[:, None] - idx[None, :]) <= window


def global_mask(num_tokens, global_tokens):
    """Rows and columns of the given token indices fully attend/attended."""
    mask = np.zeros((num_tokens, num_tokens), dtype=bool)
    global_tokens = np.asarray(global_tokens, dtype=int)
    mask[global_tokens, :] = True
    mask[:, global_tokens] = True
    return mask


def random_pattern_mask(num_tokens, per_row=2, seed=0):
    """BigBird's random component: ``per_row`` random keys per query."""
    rng = np.random.default_rng(seed)
    mask = np.zeros((num_tokens, num_tokens), dtype=bool)
    for i in range(num_tokens):
        cols = rng.choice(num_tokens, size=min(per_row, num_tokens),
                          replace=False)
        mask[i, cols] = True
    return mask


def bigbird_mask(num_tokens, window=3, num_globals=2, random_per_row=2,
                 seed=0):
    """BigBird: window + global + random, with the diagonal always kept."""
    globals_ = np.arange(min(num_globals, num_tokens))
    mask = (window_mask(num_tokens, window)
            | global_mask(num_tokens, globals_)
            | random_pattern_mask(num_tokens, random_per_row, seed))
    np.fill_diagonal(mask, True)
    return mask


def longformer_mask(num_tokens, window=4, global_tokens=(0,)):
    """Longformer: sliding window plus a few task-specific global tokens."""
    mask = window_mask(num_tokens, window) | global_mask(
        num_tokens, np.asarray(global_tokens, dtype=int)
    )
    np.fill_diagonal(mask, True)
    return mask


def block_mask(num_tokens, block_size=16):
    """BlockBERT: attention restricted to diagonal blocks."""
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    idx = np.arange(num_tokens) // block_size
    return idx[:, None] == idx[None, :]


def strided_mask(num_tokens, stride=4, window=1):
    """Strided pattern: local window plus every ``stride``-th key."""
    if stride < 1:
        raise ValueError("stride must be >= 1")
    idx = np.arange(num_tokens)
    strided = (idx[None, :] % stride) == 0
    mask = window_mask(num_tokens, window) | np.broadcast_to(
        strided, (num_tokens, num_tokens)
    ).copy()
    np.fill_diagonal(mask, True)
    return mask


def pattern_zoo(num_tokens, seed=0):
    """All related-work patterns at comparable (~90 %) sparsity."""
    n = num_tokens
    return {
        "window": window_mask(n, window=max(1, n // 40)),
        "bigbird": bigbird_mask(n, window=max(1, n // 60),
                                num_globals=max(1, n // 60),
                                random_per_row=2, seed=seed),
        "longformer": longformer_mask(
            n, window=max(1, n // 50),
            global_tokens=tuple(range(max(1, n // 100)))),
        "block": block_mask(n, block_size=max(2, n // 10)),
        "strided": strided_mask(n, stride=max(2, n // 16),
                                window=max(1, n // 80)),
    }
