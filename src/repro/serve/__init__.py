"""DSE-as-a-service: a stdlib HTTP job API over the dist result store.

``python -m repro serve --port 8765 --data-dir ./serve-data`` turns the
sweep machinery into a long-lived service: ``POST /jobs`` accepts a study
(grid + evaluator spec + workload recipe), a worker pool runs it as
:mod:`repro.dist` shards against a durable result store, ``GET
/jobs/<id>`` reports progress incrementally from the completion records,
and ``GET /jobs/<id>/results`` serves the merged sweep — byte-identical
to ``python -m repro dse --json`` on the same study, partial while the
job still runs.  Job identity is the study's content fingerprint, so
identical re-submissions deduplicate while running and hit a durable
result cache once finished; on restart the server re-enqueues every
unfinished job directory and the shards resume from their records.

Layout: :mod:`.cache` (fingerprint + result cache), :mod:`.jobs`
(validation, worker pool, durable job dirs), :mod:`.app` (HTTP routes),
:mod:`.client` (urllib client for tests/CI/benchmarks).
"""

from .app import ServeServer, build_server, run_server, serving
from .cache import ResultCache, study_fingerprint
from .client import ServeClient, ServeError
from .jobs import (
    JobFailedError,
    JobManager,
    ServeOverloadError,
    ServeRequestError,
    UnknownJobError,
)

__all__ = [
    "ServeServer",
    "build_server",
    "run_server",
    "serving",
    "ResultCache",
    "study_fingerprint",
    "ServeClient",
    "ServeError",
    "JobFailedError",
    "JobManager",
    "ServeOverloadError",
    "ServeRequestError",
    "UnknownJobError",
]
