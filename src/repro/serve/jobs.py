"""Job lifecycle for the DSE service: durable submissions, shard workers.

A *job* is one DSE study submitted over the wire.  Its identity is the
content fingerprint of its result-store manifest (:mod:`.cache`), and its
durable form is one directory:

.. code-block:: text

    data_dir/jobs/<job_id>/
      job.json      # the normalised request (exclusive-created, atomic)
      store/        # a repro.dist ResultStore: the shards' ledger
      events.jsonl  # append-only lifecycle timeline (repro.obs.events)
      result.json   # rendered results, present iff the job is done
      error.json    # present iff the job failed structurally

Everything that matters survives a server kill: ``job.json`` says what to
run, the store's completion records say what already ran, and
``result.json`` says it finished.  :meth:`JobManager.resume` re-enqueues
every job directory without a result on startup, and the shards resume
from their records (:func:`repro.dist.run_shard` skips recorded indices)
— a restarted server picks up mid-grid, not from scratch.

Execution is a small in-process worker pool over a queue of *(job,
shard)* tasks: each job runs as ``n_shards`` :mod:`repro.dist` shards
against its own store (several jobs' shards interleave across workers),
and whichever worker completes a job's last shard merges the store
(:func:`repro.dist.merge_store` — bit-identical to ``dse-merge`` and the
single-process sweep) and publishes the rendered document to the result
cache.  Evaluator failures on individual grid points are completion
records like everywhere else in the dist layer; only structural errors
(an invalid sweep, a crashed merge) fail the job, durably, until an
identical re-submission retries it.
"""

from __future__ import annotations

import json
import os
import queue
import random
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

from .. import obs
from ..dist.merge import merge_store, store_status
from ..obs.events import EventLog
from ..dist.runner import (
    model_workload_spec,
    run_shard,
    workload_fingerprint,
    workload_from_spec,
)
from ..dist.store import (
    ResultStore,
    StoreError,
    build_manifest,
    config_from_dict,
    config_to_dict,
    decode_record,
)
from ..harness.dse import PointFailure, grid_size
from ..harness.serialization import dse_result_payload, to_json
from ..hw.params import VITCOD_DEFAULT
from ..sim.evaluator import (
    dse_parameter_names,
    evaluator_from_spec,
    evaluator_spec,
)
from .cache import ResultCache, study_fingerprint

__all__ = [
    "JOB_SCHEMA",
    "ServeRequestError",
    "ServeOverloadError",
    "UnknownJobError",
    "JobFailedError",
    "JobState",
    "JobManager",
]

#: ``job.json`` schema tag; bump on incompatible layout changes.
JOB_SCHEMA = "repro-serve/1"

JOB_NAME = "job.json"
ERROR_NAME = "error.json"
EVENTS_NAME = "events.jsonl"

_STOP = object()

_log = obs.get_logger("serve.jobs")

_REQUEST_FIELDS = frozenset(
    {
        "grid",
        "evaluator",
        "base_config",
        "workload_spec",
        "model",
        "sparsity",
        "n_shards",
        "handicap",
    }
)
_WORKLOAD_SPEC_FIELDS = frozenset(
    {"kind", "model", "sparsity", "theta_d", "seed", "index_format", "reordered"}
)


class ServeRequestError(ValueError):
    """A malformed job submission (the HTTP layer maps this to 400)."""


class ServeOverloadError(RuntimeError):
    """The task queue is full; come back later (maps to 503 + Retry-After).

    Backpressure, not failure: nothing was written to disk, and an
    identical re-submission after ``retry_after`` seconds lands normally.
    """

    def __init__(self, pending, limit, retry_after):
        super().__init__(
            f"task queue is full ({pending} tasks pending, limit "
            f"{limit}); retry in {retry_after:.0f}s"
        )
        self.pending = int(pending)
        self.limit = int(limit)
        self.retry_after = float(retry_after)


class UnknownJobError(KeyError):
    """A job id this server's data dir has never seen (maps to 404)."""


class JobFailedError(RuntimeError):
    """Results were requested for a structurally failed job (maps to 409)."""


@dataclass
class JobState:
    """In-memory view of one job (the durable truth lives in its dir)."""

    job_id: str
    request: dict  # the job.json record
    root: Path
    state: str  # queued | running | merging | done | failed
    error: str = None
    remaining: set = field(default_factory=set)  # shard indices still owed
    attempts: dict = field(default_factory=dict)  # shard index -> failures

    @property
    def store_root(self) -> Path:
        return self.root / "store"

    @property
    def n_shards(self) -> int:
        return int(self.request["n_shards"])


def _check_number(value, name, minimum=None):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ServeRequestError(f"{name} must be a number, got {value!r}")
    if minimum is not None and value < minimum:
        raise ServeRequestError(f"{name} must be >= {minimum}, got {value!r}")
    return value


class JobManager:
    """Submission, execution and observation of jobs in one data dir.

    ``workers`` threads drain the shard-task queue (``0`` starts none —
    tests then drive execution deterministically with :meth:`run_next`).
    ``max_grid_points`` / ``max_shards`` bound what one request may ask
    of the server; both are validation limits, not scheduling hints.

    Robustness knobs: ``max_pending`` bounds the task queue (submissions
    that would overflow it raise :class:`ServeOverloadError` → 503);
    ``task_retries`` is the per-shard-task retry budget before a crash
    or timeout fails the whole job; ``task_timeout`` puts each shard
    task under a watchdog (``None`` disables it).
    """

    def __init__(
        self,
        data_dir,
        workers=2,
        max_grid_points=65536,
        max_shards=16,
        max_pending=1024,
        task_retries=2,
        task_timeout=None,
    ):
        self.data_dir = Path(data_dir)
        self.jobs_root = self.data_dir / "jobs"
        self.jobs_root.mkdir(parents=True, exist_ok=True)
        self.cache = ResultCache(self.jobs_root)
        self.max_grid_points = int(max_grid_points)
        self.max_shards = int(max_shards)
        self.max_pending = int(max_pending)
        self.task_retries = int(task_retries)
        self.task_timeout = None if task_timeout is None else float(task_timeout)
        self.workers = int(workers)
        self.stats = {
            "submitted": 0,
            "cache_hits": 0,
            "deduplicated": 0,
            "jobs_completed": 0,
            "jobs_failed": 0,
            "shards_run": 0,
            "task_retries": 0,
            "task_timeouts": 0,
            "overload_rejections": 0,
        }
        self._jobs = {}
        self._lock = threading.RLock()
        self._events_lock = threading.Lock()
        self._queue = queue.Queue()
        self._threads = []
        for index in range(int(workers)):
            thread = threading.Thread(
                target=self._worker, name=f"serve-worker-{index + 1}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    # ------------------------------------------------------------------
    # Telemetry plumbing
    # ------------------------------------------------------------------
    def _bump(self, key):
        """Increment a stats counter and its telemetry mirror."""
        self.stats[key] += 1
        obs.counter(f"serve_{key}").inc()

    def _event(self, root, kind, **fields):
        """Append one record to a job's durable ``events.jsonl`` timeline."""
        record = {"t": time.time(), "event": kind, **fields}
        with self._events_lock:
            EventLog(Path(root) / EVENTS_NAME).append(record)

    def _note_transition(self, job, state, **fields):
        """Count a lifecycle transition and append it to the timeline."""
        obs.counter(
            "serve_job_transitions",
            help="Job lifecycle transitions by target state.",
            state=state,
        ).inc()
        self._event(job.root, state, **fields)

    # ------------------------------------------------------------------
    # Request validation
    # ------------------------------------------------------------------
    def _normalize_grid(self, grid) -> dict:
        if not isinstance(grid, dict) or not grid:
            raise ServeRequestError(
                "'grid' must be a non-empty object mapping parameter "
                "names to value lists"
            )
        known = dse_parameter_names()
        normalized = {}
        for name, values in grid.items():
            if name not in known:
                raise ServeRequestError(
                    f"unknown grid parameter {name!r}; choose from {list(known)}"
                )
            if not isinstance(values, (list, tuple)) or not values:
                raise ServeRequestError(
                    f"grid parameter {name!r} needs a non-empty list of values"
                )
            for value in values:
                if value is not None:
                    _check_number(value, f"grid parameter {name!r} value")
            normalized[name] = list(values)
        size = grid_size(normalized)
        if size > self.max_grid_points:
            raise ServeRequestError(
                f"grid has {size} points, above this server's limit of "
                f"{self.max_grid_points}"
            )
        return normalized

    def _normalize_workload_spec(self, request) -> dict:
        spec = request.get("workload_spec")
        if spec is not None:
            if "model" in request or "sparsity" in request:
                raise ServeRequestError(
                    "pass either 'workload_spec' or the 'model'/'sparsity' "
                    "shorthand, not both"
                )
            if not isinstance(spec, dict) or spec.get("kind") != "model":
                raise ServeRequestError(
                    "'workload_spec' must be an object with kind='model' "
                    "(opaque workloads cannot cross the wire)"
                )
            unknown = sorted(set(spec) - _WORKLOAD_SPEC_FIELDS)
            if unknown:
                raise ServeRequestError(f"unknown workload_spec field(s) {unknown}")
            model = spec.get("model")
        else:
            spec = {}
            model = request.get("model", "deit-tiny")
        if not isinstance(model, str) or not model:
            raise ServeRequestError(f"'model' must be a model name, got {model!r}")
        sparsity = _check_number(
            spec.get("sparsity", request.get("sparsity", 0.9)), "'sparsity'"
        )
        # Canonicalise to the full recipe so two spellings of the same
        # study (defaults implicit vs explicit) share one fingerprint.
        return model_workload_spec(
            model,
            sparsity=sparsity,
            theta_d=spec.get("theta_d", 0.25),
            seed=spec.get("seed", 0),
            index_format=spec.get("index_format", "csc"),
            reordered=spec.get("reordered", True),
        )

    def _normalize(self, request) -> dict:
        if not isinstance(request, dict):
            raise ServeRequestError("request body must be a JSON object")
        unknown = sorted(set(request) - _REQUEST_FIELDS)
        if unknown:
            raise ServeRequestError(
                f"unknown request field(s) {unknown}; expected "
                f"{sorted(_REQUEST_FIELDS)}"
            )
        grid = self._normalize_grid(request.get("grid"))
        try:
            evaluator = evaluator_from_spec(request.get("evaluator", "analytical"))
        except (TypeError, ValueError) as exc:
            raise ServeRequestError(str(exc)) from None
        if getattr(evaluator, "adaptive", False):
            raise ServeRequestError(
                "adaptive hybrid evaluators cannot drive a served study: "
                "the merge must re-score every coarse-frontier survivor; "
                "submit with adaptive=false"
            )
        evaluator_wire = evaluator_spec(evaluator)
        fault_plan = evaluator_wire.get("faults") or {}
        if fault_plan.get("kill_after_records") is not None:
            raise ServeRequestError(
                "fault plans with 'kill_after_records' cannot run served: "
                "shards execute in-process, so the injected SIGKILL would "
                "take the whole server down; use dse-fleet for kill storms"
            )
        base_config = request.get("base_config")
        if base_config is None:
            config = VITCOD_DEFAULT
        else:
            try:
                config = config_from_dict(base_config)
            except (KeyError, TypeError, ValueError) as exc:
                raise ServeRequestError(f"bad 'base_config': {exc}") from None
        n_shards = request.get("n_shards", 1)
        if isinstance(n_shards, bool) or not isinstance(n_shards, int):
            raise ServeRequestError(f"'n_shards' must be an integer, got {n_shards!r}")
        if not 1 <= n_shards <= self.max_shards:
            raise ServeRequestError(
                f"'n_shards' must be in 1..{self.max_shards}, got {n_shards}"
            )
        handicap = _check_number(request.get("handicap", 0.0), "'handicap'", 0.0)
        return {
            "grid": grid,
            "evaluator": evaluator_wire,
            "base_config": config_to_dict(config),
            "workload_spec": self._normalize_workload_spec(request),
            "n_shards": n_shards,
            "handicap": float(handicap),
        }

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request) -> dict:
        """Accept a study: create, deduplicate, or serve it from cache.

        Returns the submission info dict the POST handler renders:
        ``id``, ``state``, ``cache_hit`` (the study already finished —
        nothing was or will be re-scored), ``created`` (this call made a
        new job rather than landing on an existing one), plus size
        counters.  Raises :class:`ServeRequestError` on malformed input
        *before* any directory is touched.
        """
        normalized = self._normalize(request)
        try:
            workload = workload_from_spec(normalized["workload_spec"])
        except Exception as exc:
            raise ServeRequestError(f"cannot build workload from spec: {exc}") from None
        spec = {
            **normalized["workload_spec"],
            "fingerprint": workload_fingerprint(workload),
        }
        manifest = build_manifest(
            normalized["grid"],
            normalized["n_shards"],
            evaluator_from_spec(normalized["evaluator"]),
            config_from_dict(normalized["base_config"]),
            spec,
        )
        job_id = study_fingerprint(manifest)
        record = {
            "schema": JOB_SCHEMA,
            "id": job_id,
            **normalized,
            "workload_spec": spec,
            "created": time.time(),
        }
        with self._lock:
            self._bump("submitted")
            if self.cache.lookup(job_id) is not None:
                self._bump("cache_hits")
                job = self._jobs.get(job_id)
                if job is None:
                    job = self._register(job_id, record, state="done")
                self._event(job.root, "cache_hit")
                return self._submit_info(job, cache_hit=True, created=False)
            job = self._jobs.get(job_id)
            if job is not None and job.state != "failed":
                self._bump("deduplicated")
                self._event(job.root, "deduplicated")
                return self._submit_info(job, cache_hit=False, created=False)
            # Backpressure before any disk write: cache hits and dedups
            # above cost nothing, but a new job owes n_shards tasks.
            # Startup resume is exempt — it re-queues work this server
            # already accepted.
            pending = self._queue.qsize()
            n_shards = int(record["n_shards"])
            if pending + n_shards > self.max_pending:
                self._bump("overload_rejections")
                retry_after = max(
                    1.0, min(60.0, pending / max(1, self.workers))
                )
                raise ServeOverloadError(pending, self.max_pending, retry_after)
            job_root = self.jobs_root / job_id
            created = self._publish_job_record(job_root, record)
            if not created:
                # The directory survives from an earlier server life (or
                # a failed run being retried): adopt its durable record.
                record = json.loads((job_root / JOB_NAME).read_text())
            try:
                ResultStore.create_or_attach(job_root / "store", manifest)
            except StoreError as exc:
                raise ServeRequestError(
                    f"job {job_id} has a conflicting store on disk: {exc}"
                ) from None
            self._event(
                job_root,
                "submitted",
                created=created,
                evaluator=record["evaluator"]["name"],
                grid_size=grid_size(record["grid"]),
                n_shards=int(record["n_shards"]),
            )
            job = self._enqueue(job_id, record)
            return self._submit_info(job, cache_hit=False, created=created)

    def _publish_job_record(self, job_root: Path, record: dict) -> bool:
        """Exclusively and atomically create ``job.json`` (claim pattern).

        Same temp-file + hard-link publish as the store manifest: the
        link either creates the file with complete content or fails with
        ``FileExistsError``, so a concurrent identical submission — or a
        re-submission after a crash — can always *parse* whatever it
        finds.  Returns whether this call was the creator.
        """
        job_root.mkdir(parents=True, exist_ok=True)
        path = job_root / JOB_NAME
        tmp = path.with_name(f"{JOB_NAME}.tmp.{os.getpid()}.{threading.get_ident()}")
        tmp.write_text(json.dumps(record, sort_keys=True, indent=2) + "\n")
        try:
            os.link(tmp, path)
        except FileExistsError:
            return False
        finally:
            tmp.unlink(missing_ok=True)
        return True

    def _register(self, job_id, record, state, error=None) -> JobState:
        job = JobState(
            job_id=job_id,
            request=record,
            root=self.jobs_root / job_id,
            state=state,
            error=error,
        )
        self._jobs[job_id] = job
        return job

    def _enqueue(self, job_id, record) -> JobState:
        """(Re-)queue every shard of a job; caller holds the lock."""
        job = self._register(job_id, record, state="queued")
        job.remaining = set(range(1, job.n_shards + 1))
        (job.root / ERROR_NAME).unlink(missing_ok=True)
        for k in sorted(job.remaining):
            self._queue.put((job_id, k))
        self._note_transition(job, "queued", n_shards=job.n_shards)
        return job

    def _submit_info(self, job, cache_hit, created) -> dict:
        return {
            "id": job.job_id,
            "state": job.state,
            "cache_hit": cache_hit,
            "created": created,
            "n_shards": job.n_shards,
            "grid_size": grid_size(job.request["grid"]),
            "evaluator": job.request["evaluator"]["name"],
        }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker(self):
        while True:
            task = self._queue.get()
            if task is _STOP:
                return
            self._run_task(*task)

    def run_next(self) -> bool:
        """Run one queued shard task in the calling thread.

        The deterministic test hook (and the whole execution path: the
        worker threads run exactly this).  Returns whether a task ran.
        """
        try:
            task = self._queue.get_nowait()
        except queue.Empty:
            return False
        if task is _STOP:
            return False
        self._run_task(*task)
        return True

    def _run_task(self, job_id, shard_index):
        job = self._jobs[job_id]
        with self._lock:
            if job.state == "failed":
                return  # a sibling shard already poisoned the job
            started = job.state == "queued"
            if started:
                job.state = "running"
        if started:
            self._note_transition(job, "running")
        self._event(job.root, "shard_started", shard=shard_index)
        try:
            run = self._execute_shard(job, shard_index)
            self._bump("shards_run")
        except Exception as exc:  # noqa: BLE001 - retried, then job-poisoning
            self._retry_or_fail(job, shard_index, exc)
            return
        self._event(
            job.root,
            "shard_finished",
            shard=shard_index,
            evaluated=run.evaluated,
            skipped=run.skipped,
            failed=run.failed,
        )
        with self._lock:
            job.remaining.discard(shard_index)
            ready = not job.remaining and job.state == "running"
            if ready:
                job.state = "merging"
        if ready:
            self._note_transition(job, "merging")
            try:
                self._merge(job)
            except Exception as exc:  # noqa: BLE001
                self._fail(job, exc)

    def _execute_shard(self, job, shard_index):
        """Run one shard, under the task watchdog when one is configured.

        With a ``task_timeout`` the shard runs on a helper thread so the
        worker can give up on it: a task over budget raises
        :class:`TimeoutError` here and is handled like any other shard
        failure (retry budget, then job failure).  The abandoned thread
        may still finish in the background — its store records are
        duplicate-tolerant, so a late completion is harmless.
        """

        def work():
            workload = workload_from_spec(job.request["workload_spec"])
            return run_shard(
                workload,
                job.request["grid"],
                f"{shard_index}/{job.n_shards}",
                job.store_root,
                base_config=config_from_dict(job.request["base_config"]),
                evaluator=evaluator_from_spec(job.request["evaluator"]),
                workload_spec=job.request["workload_spec"],
                handicap=job.request.get("handicap", 0.0),
            )

        if self.task_timeout is None:
            return work()
        box = {}
        done = threading.Event()

        def target():
            try:
                box["run"] = work()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                box["exc"] = exc
            finally:
                done.set()

        thread = threading.Thread(
            target=target,
            name=f"serve-shard-{job.job_id[:8]}-{shard_index}",
            daemon=True,
        )
        thread.start()
        if not done.wait(self.task_timeout):
            self._bump("task_timeouts")
            raise TimeoutError(
                f"shard {shard_index} exceeded the task timeout "
                f"({self.task_timeout:.1f}s)"
            )
        if "exc" in box:
            raise box["exc"]
        return box["run"]

    def _retry_or_fail(self, job, shard_index, exc):
        """Spend one of the job's task retries, or fail it durably."""
        error = f"{type(exc).__name__}: {exc}"
        with self._lock:
            attempts = job.attempts.get(shard_index, 0) + 1
            job.attempts[shard_index] = attempts
            retry = attempts <= self.task_retries and job.state != "failed"
        if not retry:
            self._fail(job, exc)
            return
        self._bump("task_retries")
        delay = min(2.0, 0.05 * 2 ** (attempts - 1)) * (
            0.5 + random.random()
        )
        _log.warning(
            "job %s shard %d failed (%s); retry %d/%d in %.2fs",
            job.job_id, shard_index, error, attempts, self.task_retries, delay,
        )
        self._event(
            job.root, "shard_retry",
            shard=shard_index, attempt=attempts, error=error,
        )
        time.sleep(delay)
        self._queue.put((job.job_id, shard_index))

    def _merge(self, job):
        """Fold the job's store into the served document (the last mile)."""
        workload = workload_from_spec(job.request["workload_spec"])
        merged = merge_store(job.store_root, workload=workload)
        spec = job.request["workload_spec"]
        payload = dse_result_payload(
            spec.get("model"),
            spec.get("sparsity"),
            merged.manifest["evaluator"]["name"],
            {name: tuple(vs) for name, vs in merged.manifest["grid"].items()},
            list(merged.points),
        )
        self.cache.store(job.job_id, to_json(payload))
        with self._lock:
            job.state = "done"
            self._bump("jobs_completed")
        self._note_transition(
            job,
            "done",
            points=len(merged.points),
            frontier=len(merged.frontier),
            duplicates=merged.duplicates,
        )

    def _fail(self, job, exc):
        error = f"{type(exc).__name__}: {exc}"
        _log.error("job %s failed: %s", job.job_id, error)
        with self._lock:
            job.state = "failed"
            job.error = error
            self._bump("jobs_failed")
        path = job.root / ERROR_NAME
        tmp = path.with_name(f"{ERROR_NAME}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps({"error": error, "t": time.time()}) + "\n")
        os.replace(tmp, path)
        self._note_transition(job, "failed", error=error)

    # ------------------------------------------------------------------
    # Observation
    # ------------------------------------------------------------------
    def _get(self, job_id) -> JobState:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(job_id)
        return job

    def jobs(self) -> list:
        """Brief submission info for every known job (listing endpoint)."""
        with self._lock:
            jobs = list(self._jobs.values())
        return [
            self._submit_info(job, cache_hit=False, created=False)
            for job in sorted(jobs, key=lambda j: j.request.get("created", 0.0))
        ]

    def status(self, job_id) -> dict:
        """One job's progress, served incrementally from the store ledger.

        ``done``/``scored``/``failed_points``/``eta_seconds`` come from
        :func:`repro.dist.store_status` over the job's completion records
        — no evaluator is touched, so polling is always cheap, and the
        numbers advance while shards run.
        """
        job = self._get(job_id)
        spec = job.request["workload_spec"]
        info = {
            "id": job.job_id,
            "state": job.state,
            "evaluator": job.request["evaluator"]["name"],
            "model": spec.get("model"),
            "sparsity": spec.get("sparsity"),
            "n_shards": job.n_shards,
            "grid_size": grid_size(job.request["grid"]),
            "cached": job.state == "done",
        }
        if job.error:
            info["error"] = job.error
        try:
            progress = store_status(job.store_root)
        except StoreError:
            info.update(
                done=0,
                scored=0,
                failed_points=0,
                fraction_done=0.0,
                eta_seconds=None,
                fine_records=0,
            )
            return info
        info.update(
            done=progress.done,
            scored=progress.scored,
            failed_points=progress.failed,
            fraction_done=progress.fraction_done,
            eta_seconds=progress.eta_seconds,
            fine_records=progress.fine_records,
        )
        return info

    def events(self, job_id) -> list:
        """The job's durable lifecycle timeline, oldest record first.

        Decoded from ``events.jsonl`` — submitted/queued/running,
        per-shard start/finish, merging, done or failed, plus cache hits
        and dedups landing on this job.  Torn-tail tolerant like every
        store in this repo; raises :class:`UnknownJobError` for ids this
        data dir has never seen.
        """
        job = self._get(job_id)
        return EventLog(job.root / EVENTS_NAME).read()

    def results(self, job_id):
        """``(text, partial)`` — the rendered results document.

        A finished job serves its cached document *verbatim* (the bytes
        are the contract: byte-identical to ``python -m repro dse
        --json`` on the same study).  An unfinished job streams a partial
        document decoded from the completion records written so far —
        scored points in grid order, marked ``"partial": true`` with
        done/grid-size counters.  A failed job raises
        :class:`JobFailedError`.
        """
        job = self._get(job_id)
        cached = self.cache.lookup(job_id)
        if cached is not None:
            return cached, False
        if job.state == "failed":
            raise JobFailedError(job.error or "job failed")
        store = ResultStore(job.store_root)
        records = {}
        for _, _, path in store.shard_files():
            records.update(store.load_records(path))
        points = []
        for index in sorted(records):
            _, result = decode_record(records[index])
            if isinstance(result, PointFailure):
                continue
            points.append(
                {
                    "index": index,
                    "parameters": dict(result.parameters),
                    "seconds": result.seconds,
                    "energy_joules": result.energy_joules,
                    "edp": result.edp,
                }
            )
        payload = {
            "partial": True,
            "state": job.state,
            "evaluator": job.request["evaluator"]["name"],
            "grid_size": grid_size(job.request["grid"]),
            "done": len(records),
            "points": points,
        }
        return to_json(payload), True

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def resume(self) -> list:
        """Re-enqueue every unfinished job directory (server startup).

        A directory with a ``result.json`` registers as done (its cache
        entry already serves), one with an ``error.json`` registers as
        failed (an identical re-submission retries it), and anything
        else goes back on the queue — its shards skip every recorded
        index, so only the genuinely missing work re-runs.
        """
        resumed = []
        if not self.jobs_root.is_dir():
            return resumed
        for job_dir in sorted(self.jobs_root.iterdir()):
            record_path = job_dir / JOB_NAME
            if not record_path.is_file():
                continue
            job_id = job_dir.name
            record = json.loads(record_path.read_text())
            with self._lock:
                if job_id in self._jobs:
                    continue
                if self.cache.lookup(job_id) is not None:
                    self._register(job_id, record, state="done")
                    continue
                error_path = job_dir / ERROR_NAME
                if error_path.is_file():
                    error = json.loads(error_path.read_text()).get("error")
                    self._register(job_id, record, state="failed", error=error)
                    continue
                self._event(job_dir, "resumed")
                self._enqueue(job_id, record)
                resumed.append(job_id)
        return resumed

    def stop(self, timeout=10.0):
        """Stop the worker threads (queued tasks stay durable on disk)."""
        for _ in self._threads:
            self._queue.put(_STOP)
        for thread in self._threads:
            thread.join(timeout)
        self._threads = []
