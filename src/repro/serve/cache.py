"""Content-addressed result cache keyed by the store's manifest fingerprint.

A job's identity IS its study's content: the result-store manifest
(:func:`repro.dist.build_manifest`) already pins everything that
determines a sweep's output — the grid, the evaluator spec, the base
hardware config, and the workload recipe *including its structural
fingerprint*.  :func:`study_fingerprint` hashes the manifest's canonical
JSON minus the execution-detail fields (shard count, weight vector —
sharding never changes the merged result, which the dist layer's
bit-exactness guarantees make true by construction), and that digest is
the job id.

Two consequences fall out for free:

* **deduplication** — POSTing a study that is already queued or running
  lands on the same job directory (the ``job.json`` exclusive-create is
  the arbiter), so a stampede of identical requests costs one evaluation;
* **content-addressed caching** — POSTing a study that already finished
  finds its rendered ``result.json`` under the same id and returns it
  instantly with ``cache_hit: true``, without touching an evaluator.

The cache is durable and self-contained: each entry is the rendered
results document (exactly the bytes ``GET /jobs/<id>/results`` serves,
byte-identical to ``python -m repro dse --json`` on the same study),
written atomically next to the job's store so a server restart — or a
different server pointed at the same data dir — inherits it.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

__all__ = ["EXECUTION_KEYS", "study_fingerprint", "ResultCache"]

#: Manifest fields that describe *how* a study runs, not *what* it
#: computes — excluded from the fingerprint so re-submitting the same
#: study with a different shard count is still the same job.
EXECUTION_KEYS = ("num_shards", "weights")

RESULT_NAME = "result.json"


def study_fingerprint(manifest: dict) -> str:
    """Digest of a study's content: the manifest minus execution details.

    Canonical JSON (sorted keys, no whitespace) makes the digest stable
    across hosts and dict orderings; 16 hex chars (64 bits) is plenty for
    a job namespace while staying readable in URLs and directory names.
    """
    payload = {
        key: value for key, value in manifest.items() if key not in EXECUTION_KEYS
    }
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


class ResultCache:
    """Finished-study documents, one ``result.json`` per job directory."""

    def __init__(self, jobs_root):
        self.jobs_root = Path(jobs_root)

    def result_path(self, job_id: str) -> Path:
        return self.jobs_root / job_id / RESULT_NAME

    def lookup(self, job_id: str):
        """The rendered results text for ``job_id``, or ``None``."""
        path = self.result_path(job_id)
        try:
            return path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None

    def store(self, job_id: str, text: str) -> Path:
        """Atomically publish a finished study's rendered results.

        Temp file + ``os.replace`` in the job directory: a reader (or a
        crashed writer's successor) sees either no entry or a complete
        one, never a torn document — the presence of ``result.json`` is
        what marks a job *done* across restarts.
        """
        path = self.result_path(job_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{RESULT_NAME}.tmp.{os.getpid()}")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)
        return path
