"""The HTTP surface: stdlib ``ThreadingHTTPServer`` over a JobManager.

Six routes — JSON everywhere except the Prometheus text of ``/metrics``:

========================  ====================================================
``GET /health``           liveness + the manager's counters
``GET /metrics``          the process's telemetry registry in Prometheus
                          text exposition format (:mod:`repro.obs`)
``POST /jobs``            submit a study → ``{id, state, cache_hit, ...}``
                          (``201`` when this call created the job, ``200``
                          when it deduplicated onto a running one or hit the
                          result cache)
``GET /jobs``             brief info for every known job
``GET /jobs/<id>``        progress from the store ledger (done %, ETA)
``GET /jobs/<id>/events``  the job's durable lifecycle timeline
                          (``events.jsonl``, oldest first)
``GET /jobs/<id>/results``  the results document — partial while running,
                          and once done the cached text **verbatim**
                          (byte-identical to ``python -m repro dse --json``)
========================  ====================================================

Errors are ``{"error": msg}``: ``400`` for malformed submissions, ``404``
for unknown ids, ``409`` for results of a failed job.  The server is
deliberately boring — every decision lives in :class:`.jobs.JobManager`;
this module only parses bytes and picks status codes.

Every request is timed: per-route counters and latency histograms land in
the default :mod:`repro.obs` registry (``serve_http_requests_total``,
``serve_http_request_seconds``), which :func:`build_server` enables so a
served study populates the DSE/dist counters too.  ``--verbose`` emits a
structured one-line access log per request through the
``repro.serve.access`` logger; the stdlib's stderr printf
(``log_message``) is silenced unconditionally.
"""

from __future__ import annotations

import contextlib
import json
import math
import re
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from time import perf_counter

from .. import obs
from ..obs import METRICS_CONTENT_TYPE, EventLogError, render_metrics
from .jobs import (
    JobFailedError,
    JobManager,
    ServeOverloadError,
    ServeRequestError,
    UnknownJobError,
)

__all__ = ["ServeServer", "build_server", "run_server", "serving"]

_JOB_ROUTE = re.compile(r"^/jobs/([0-9a-f]{16})(/results|/events)?$")

_access_log = obs.get_logger("serve.access")


def _route_template(path: str) -> str:
    """Collapse a request path to its route label (bounded cardinality)."""
    path = path.split("?", 1)[0]
    if path in ("/", "/health"):
        return "/health"
    if path in ("/jobs", "/metrics"):
        return path
    match = _JOB_ROUTE.match(path)
    if match:
        return "/jobs/{id}" + (match.group(2) or "")
    return "(unmatched)"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def manager(self) -> JobManager:
        return self.server.manager

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silenced: the structured access log in :meth:`_dispatch`
        replaces the stdlib's per-request stderr printf."""

    # -- plumbing ------------------------------------------------------
    def _send(self, code, text, content_type="application/json", headers=None):
        body = text.encode("utf-8")
        self._status = code
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code, payload, headers=None):
        self._send(code, json.dumps(payload, sort_keys=True), headers=headers)

    def _error(self, code, message):
        self._send_json(code, {"error": str(message)})

    def _dispatch(self, method, route_handler):
        """Time one request and record it: counters, histogram, access log.

        Telemetry wraps the route handler rather than living inside it,
        so every route — including future ones — is measured the same
        way, and a handler crash still records a 500.
        """
        begin = perf_counter()
        self._status = None
        try:
            route_handler()
        finally:
            duration = perf_counter() - begin
            status = self._status if self._status is not None else 500
            route = _route_template(self.path)
            registry = obs.get_registry()
            if registry.enabled:
                registry.counter(
                    "serve_http_requests_total",
                    help="HTTP requests by method, route and status.",
                    method=method,
                    route=route,
                    status=str(status),
                ).inc()
                registry.histogram(
                    "serve_http_request_seconds",
                    help="HTTP request latency by route.",
                    route=route,
                ).observe(duration)
            if self.server.verbose:
                _access_log.info(
                    "method=%s path=%s status=%s duration_ms=%.2f",
                    method,
                    self.path.split("?", 1)[0],
                    status,
                    duration * 1000.0,
                )

    # -- routes --------------------------------------------------------
    def do_GET(self):
        self._dispatch("GET", self._route_get)

    def do_POST(self):
        self._dispatch("POST", self._route_post)

    def _route_get(self):
        path = self.path.split("?", 1)[0]
        if path in ("/", "/health"):
            self._send_json(
                200, {"ok": True, "service": "repro-serve", "stats": self.manager.stats}
            )
            return
        if path == "/metrics":
            self._send(
                200,
                render_metrics(obs.get_registry()),
                content_type=METRICS_CONTENT_TYPE,
            )
            return
        if path == "/jobs":
            self._send_json(200, {"jobs": self.manager.jobs()})
            return
        match = _JOB_ROUTE.match(path)
        if match is None:
            self._error(404, f"no route {path!r}")
            return
        job_id, suffix = match.group(1), match.group(2) or ""
        try:
            if suffix == "/results":
                # The results document is pre-rendered text; send it
                # verbatim — these bytes are the byte-identity contract.
                text, _partial = self.manager.results(job_id)
                self._send(200, text)
            elif suffix == "/events":
                events = self.manager.events(job_id)
                self._send_json(
                    200, {"id": job_id, "count": len(events), "events": events}
                )
            else:
                self._send_json(200, self.manager.status(job_id))
        except UnknownJobError:
            self._error(404, f"unknown job {job_id!r}")
        except JobFailedError as exc:
            self._error(409, f"job {job_id} failed: {exc}")
        except EventLogError as exc:
            self._error(500, f"event stream unreadable: {exc}")

    def _route_post(self):
        path = self.path.split("?", 1)[0]
        if path != "/jobs":
            self._error(404, f"no route {path!r}")
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._error(400, "bad Content-Length")
            return
        try:
            request = json.loads(self.rfile.read(length) or b"")
        except json.JSONDecodeError as exc:
            self._error(400, f"request body is not valid JSON: {exc}")
            return
        try:
            info = self.manager.submit(request)
        except ServeRequestError as exc:
            self._error(400, str(exc))
            return
        except ServeOverloadError as exc:
            # Backpressure: 503 plus a machine-readable Retry-After so
            # well-behaved clients (ServeClient included) pace themselves.
            self._send_json(
                503,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": str(int(math.ceil(exc.retry_after)))},
            )
            return
        self._send_json(201 if info["created"] else 200, info)


class ServeServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer that owns a :class:`JobManager`."""

    daemon_threads = True

    def __init__(self, address, manager: JobManager, verbose=False):
        super().__init__(address, _Handler)
        self.manager = manager
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def build_server(
    data_dir,
    host="127.0.0.1",
    port=0,
    workers=2,
    max_grid_points=65536,
    max_shards=16,
    max_pending=1024,
    task_timeout=None,
    task_retries=2,
    verbose=False,
) -> ServeServer:
    """Bind a server and resume any unfinished jobs in ``data_dir``.

    ``port=0`` binds an ephemeral port (read it back from ``.port``).
    Resumption happens *before* the first request can land: a restarted
    server already owes its half-done studies to the queue.  Enables the
    default telemetry registry — a serving process is exactly the process
    whose ``/metrics`` should be live.
    """
    obs.enable()
    manager = JobManager(
        data_dir,
        workers=workers,
        max_grid_points=max_grid_points,
        max_shards=max_shards,
        max_pending=max_pending,
        task_timeout=task_timeout,
        task_retries=task_retries,
    )
    manager.resume()
    return ServeServer((host, port), manager, verbose=verbose)


def run_server(
    data_dir,
    host="127.0.0.1",
    port=8765,
    workers=2,
    verbose=False,
    max_pending=1024,
    task_timeout=None,
    task_retries=2,
):
    """Blocking entry point behind ``python -m repro serve``.

    ``SIGTERM`` drains gracefully: the accept loop stops, in-flight
    shard tasks finish (their records are already durable either way),
    and the process exits 0 — queued work resumes on the next start.
    """
    if verbose:
        obs.configure_logging()
    server = build_server(
        data_dir, host=host, port=port, workers=workers, verbose=verbose,
        max_pending=max_pending, task_timeout=task_timeout,
        task_retries=task_retries,
    )

    def _drain(signum, frame):
        print("repro-serve: SIGTERM received, draining", flush=True)
        # shutdown() blocks until serve_forever returns, so it must not
        # run on the thread currently inside serve_forever.
        threading.Thread(target=server.shutdown, daemon=True).start()

    # Registered before the startup banner: once a supervisor can read
    # the address, SIGTERM already means drain, not die.
    try:
        signal.signal(signal.SIGTERM, _drain)
    except ValueError:
        pass  # not the main thread (tests drive run_server off-main)
    resumed = [
        info["id"]
        for info in server.manager.jobs()
        if info["state"] in ("queued", "running")
    ]
    print(
        f"repro-serve listening on {server.url} "
        f"(data_dir={data_dir}, workers={workers}, resumed={len(resumed)})",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        server.manager.stop()
    return server


@contextlib.contextmanager
def serving(data_dir, **kwargs):
    """Run a server on a background thread for the ``with`` body.

    Yields the :class:`ServeServer`; the tests' and benchmarks' way to
    stand up a real HTTP endpoint (ephemeral port by default) without a
    subprocess.
    """
    server = build_server(data_dir, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        server.manager.stop()
        thread.join(timeout=10)
