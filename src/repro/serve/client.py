"""A tiny urllib client for the DSE service (tests, CI, load smoke).

No third-party HTTP stack — :mod:`urllib.request` against the stdlib
server keeps the client importable anywhere the package is.  Error
responses surface as :class:`ServeError` carrying the HTTP status and
the server's ``error`` message; :meth:`ServeClient.raw_results` returns
the served bytes untouched for byte-identity assertions.

The client retries what a client safely can: connection errors (the
server is restarting — its jobs are durable, so the same request lands
normally a moment later) and 5xx responses, with capped jittered
exponential backoff that honours a 503's ``Retry-After``.  4xx responses
never retry — they mean the request itself, not the moment.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request

__all__ = ["ServeError", "ServeClient"]


class ServeError(RuntimeError):
    """An HTTP error response from the service."""

    def __init__(self, status, message):
        super().__init__(f"HTTP {status}: {message}")
        self.status = int(status)
        self.message = message


class ServeClient:
    """Talk to one server: submit studies, poll status, fetch results."""

    def __init__(self, base_url, timeout=30.0, retries=3, backoff_s=0.2):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)

    # -- plumbing ------------------------------------------------------
    def _delay(self, attempt, retry_after=None) -> float:
        delay = min(5.0, self.backoff_s * 2**attempt) * (0.5 + random.random())
        if retry_after is not None:
            try:
                delay = max(delay, min(30.0, float(retry_after)))
            except (TypeError, ValueError):
                pass
        return delay

    def _request(self, path, data=None) -> bytes:
        url = f"{self.base_url}{path}"
        request = urllib.request.Request(
            url,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        for attempt in range(self.retries + 1):
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return response.read()
            except urllib.error.HTTPError as exc:
                body = exc.read()
                try:
                    message = json.loads(body).get("error", body.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    message = body.decode("utf-8", "replace")
                error = ServeError(exc.code, message)
                if exc.code < 500 or attempt >= self.retries:
                    raise error from None
                retry_after = exc.headers.get("Retry-After") if exc.headers else None
                time.sleep(self._delay(attempt, retry_after))
            except urllib.error.URLError:
                # Connection refused/reset: the server side of a restart.
                if attempt >= self.retries:
                    raise
                time.sleep(self._delay(attempt))
        raise AssertionError("unreachable")  # pragma: no cover

    def _json(self, path, payload=None):
        data = None
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
        return json.loads(self._request(path, data=data))

    # -- API -----------------------------------------------------------
    def health(self) -> dict:
        return self._json("/health")

    def submit(self, request: dict) -> dict:
        """POST a study; returns the submission info (id, cache_hit, ...)."""
        return self._json("/jobs", payload=request)

    def jobs(self) -> list:
        return self._json("/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._json(f"/jobs/{job_id}")

    def results(self, job_id: str) -> dict:
        return self._json(f"/jobs/{job_id}/results")

    def events(self, job_id: str) -> list:
        """The job's durable lifecycle timeline, oldest record first."""
        return self._json(f"/jobs/{job_id}/events")["events"]

    def metrics_text(self) -> str:
        """``GET /metrics`` — Prometheus text exposition, verbatim."""
        return self._request("/metrics").decode("utf-8")

    def raw_results(self, job_id: str) -> bytes:
        """The results document's exact bytes (byte-identity checks)."""
        return self._request(f"/jobs/{job_id}/results")

    def wait(self, job_id: str, timeout=300.0, poll=0.2) -> dict:
        """Poll until the job leaves the queue; returns its final status.

        Raises :class:`TimeoutError` if the job is still running at the
        deadline and :class:`ServeError` never (a *failed* job is a
        terminal status here — callers decide how loud to be).
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed"):
                return status
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s "
                    f"({status.get('done', 0)}/{status.get('grid_size', '?')} points)"
                )
            time.sleep(poll)

    def run(self, request: dict, timeout=300.0, poll=0.2) -> dict:
        """Submit, wait, and return the parsed results document."""
        info = self.submit(request)
        status = self.wait(info["id"], timeout=timeout, poll=poll)
        if status["state"] == "failed":
            raise ServeError(409, status.get("error", "job failed"))
        return self.results(info["id"])
