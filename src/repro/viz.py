"""Headless (ASCII) visualisation of masks, rooflines, breakdowns, curves.

Everything in this reproduction runs without matplotlib; these renderers
give the examples and CLI readable pictures of the paper's figures: Fig. 8
mask density plots, Fig. 3 rooflines, Fig. 19 breakdown bars, and Fig. 9b
training curves.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "render_mask",
    "render_bar",
    "render_breakdown",
    "render_curve",
    "render_roofline",
]

_SHADES = " .:-=+*#%@"


def render_mask(mask, width=60):
    """Density picture of a boolean (N, N) mask (Fig. 8 style)."""
    mask = np.asarray(mask, dtype=float)
    if mask.ndim != 2:
        raise ValueError(f"expected a 2-D mask, got shape {mask.shape}")
    n, m = mask.shape
    step_r = max(1, n // width)
    step_c = max(1, m // width)
    lines = []
    for i in range(0, n - step_r + 1, step_r):
        row = []
        for j in range(0, m - step_c + 1, step_c):
            density = mask[i:i + step_r, j:j + step_c].mean()
            row.append(_SHADES[min(len(_SHADES) - 1,
                                   int(density * len(_SHADES)))])
        lines.append("".join(row))
    return "\n".join(lines)


def render_bar(value, maximum, width=40, fill="#"):
    """A single horizontal bar scaled to ``maximum``."""
    if maximum <= 0:
        raise ValueError("maximum must be positive")
    count = int(round(width * min(value, maximum) / maximum))
    return fill * count + " " * (width - count)


def render_breakdown(fractions, width=40):
    """Stacked latency-breakdown bar (Fig. 19 style).

    ``fractions`` maps label -> fraction; characters: compute '#',
    preprocess '~', data_movement '='.
    """
    chars = {"compute": "#", "preprocess": "~", "data_movement": "="}
    bar = []
    for key, ch in chars.items():
        bar.append(ch * int(round(width * fractions.get(key, 0.0))))
    line = "".join(bar)[:width]
    legend = "  ".join(f"{ch}={key} {fractions.get(key, 0.0):.0%}"
                       for key, ch in chars.items())
    return f"[{line.ljust(width)}] {legend}"


def render_curve(xs, ys, width=60, height=12, x_label="", y_label=""):
    """Scatter-line plot of one curve (Fig. 9b style)."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise ValueError("xs and ys must be equal-length 1-D sequences")
    if len(xs) == 0:
        raise ValueError("empty curve")
    grid = [[" "] * width for _ in range(height)]
    x_lo, x_hi = xs.min(), xs.max()
    y_lo, y_hi = ys.min(), ys.max()
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    for x, y in zip(xs, ys):
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = ["".join(r) for r in grid]
    header = f"{y_label} [{y_lo:.4g} .. {y_hi:.4g}]"
    footer = f"{x_label} [{x_lo:.4g} .. {x_hi:.4g}]"
    return "\n".join([header] + lines + [footer])


def render_roofline(points, config=None, width=60, height=14):
    """Log-log roofline with labelled kernel points (Fig. 3 style).

    ``points`` is an iterable of objects with .name/.intensity attributes
    (see :class:`repro.roofline.RooflinePoint`).
    """
    from .hw.params import VITCOD_DEFAULT
    from .roofline import attainable_gops

    config = config or VITCOD_DEFAULT
    points = list(points)
    intensities = [p.intensity for p in points if np.isfinite(p.intensity)]
    if not intensities:
        raise ValueError("no finite roofline points")
    x_lo = min(min(intensities) / 2, 0.1)
    x_hi = max(max(intensities) * 2, 10.0)
    y_hi = config.peak_gops * 1.5
    y_lo = attainable_gops(x_lo, config) / 2

    def to_col(x):
        return int((np.log10(x) - np.log10(x_lo))
                   / (np.log10(x_hi) - np.log10(x_lo)) * (width - 1))

    def to_row(y):
        return height - 1 - int(
            (np.log10(y) - np.log10(y_lo))
            / (np.log10(y_hi) - np.log10(y_lo)) * (height - 1)
        )

    grid = [[" "] * width for _ in range(height)]
    # The roof itself.
    for col in range(width):
        x = 10 ** (np.log10(x_lo) + col / (width - 1)
                   * (np.log10(x_hi) - np.log10(x_lo)))
        row = to_row(max(min(attainable_gops(x, config), y_hi), y_lo))
        if 0 <= row < height:
            grid[row][col] = "_"
    # Kernel points, labelled by their first letter.
    labels = []
    for p in points:
        if not np.isfinite(p.intensity):
            continue
        col = min(max(to_col(p.intensity), 0), width - 1)
        y = max(min(attainable_gops(p.intensity, config), y_hi), y_lo)
        row = min(max(to_row(y), 0), height - 1)
        marker = p.name[0].upper()
        grid[row][col] = marker
        labels.append(f"{marker}={p.name} ({p.intensity:.2f} Op/B)")
    lines = ["".join(r) for r in grid]
    header = f"GOPS (peak {config.peak_gops:.0f}) — log-log"
    return "\n".join([header] + lines + ["intensity (Ops/Byte)"] + labels)
