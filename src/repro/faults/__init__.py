"""Deterministic fault injection for chaos-testing the DSE stack.

``repro.faults`` is stdlib-only and follows the :mod:`repro.obs` contract:
until a plan is activated, every injection hook is a true no-op (one
module-global ``None`` check).  A :class:`FaultPlan` rides the evaluator
spec wire format as an optional ``"faults"`` key, so faulty studies flow
through ``dse``, ``dse-shard``, ``dse-fleet`` and ``POST /jobs`` unchanged::

    {"name": "cycle", "faults": {"seed": 7, "evaluator_error_rate": 0.1}}

See :mod:`repro.faults.plan` for the catalogue of injection points and
the one-shot marker mechanics, and the README "Operating under failure"
runbook for how the dist/serve layers recover from each fault.
"""

from .errors import FaultInjectedError, FaultPlanError, TransientError
from .evaluator import FaultyEvaluator
from .plan import FaultPlan, activate, active_plan, plan_from_spec

__all__ = [
    "FaultInjectedError",
    "FaultPlan",
    "FaultPlanError",
    "FaultyEvaluator",
    "TransientError",
    "activate",
    "active_plan",
    "plan_from_spec",
]
