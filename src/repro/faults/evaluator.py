"""An evaluator wrapper that injects seeded faults around real scoring."""

from __future__ import annotations

__all__ = ["FaultyEvaluator"]


class FaultyEvaluator:
    """Wrap any point evaluator with a :class:`~repro.faults.FaultPlan`.

    The wrapper is deliberately per-point (no ``evaluate_batch``): every
    injected fault must land on one attributable design point so the
    retry machinery can re-evaluate exactly that point.  Batch-capable
    inner evaluators simply fall back to their per-point protocol.

    Faults are selected from the *evaluated configuration*, not grid
    order, so shard layout, stealing and chunking never change which
    points are faulty.
    """

    def __init__(self, inner, plan):
        if inner is None or isinstance(inner, str):
            # Resolved lazily so this module stays stdlib-only at import
            # time (obs/dist import sibling fault modules at module level).
            from ..sim.evaluator import resolve_evaluator

            inner = resolve_evaluator(inner)
        from .plan import plan_from_spec

        self.inner = inner
        self.fault_plan = plan_from_spec(plan)

    @property
    def adaptive(self):
        """Proxy the inner evaluator's adaptive flag (serve rejects it)."""
        return getattr(self.inner, "adaptive", False)

    def __call__(self, workload, config, accel_kwargs):
        self.fault_plan.evaluator_fault(_point_key(config, accel_kwargs))
        return self.inner(workload, config, accel_kwargs)

    def __repr__(self):
        return f"FaultyEvaluator({self.inner!r}, {self.fault_plan!r})"


def _point_key(config, accel_kwargs):
    """Stable identity of an evaluated point across processes and hosts."""
    return f"{config!r}|{sorted(accel_kwargs.items())!r}"
