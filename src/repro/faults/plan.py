"""Seed-deterministic fault plans with named injection points.

A :class:`FaultPlan` describes *which* faults to inject and *where*:

========================  ====================================================
injection point           fires in
========================  ====================================================
``evaluator_error``       :class:`repro.faults.FaultyEvaluator` — raises a
                          transient error for a seeded subset of points
``evaluator_hang``        :class:`repro.faults.FaultyEvaluator` — one-shot
                          sleep inside an evaluation (stalls the heartbeat)
``torn_write``            ``JsonlAppender.append`` — one-shot half-written
                          record followed by a crash
``fsync_error``           ``JsonlAppender``/``EventLog`` fsync — one-shot
                          ``OSError`` out of the durability barrier
``kill``                  shard runner — ``SIGKILL`` the process after N
                          durable appends
``claim_delay``           steal claim races — widens the O_EXCL window
========================  ====================================================

Everything is derived from ``seed`` and stable point identity, so a chaos
run is reproducible.  One-shot faults claim an ``O_CREAT | O_EXCL`` marker
file under the plan's *scope* directory (the result-store root), so a
relaunched shard does not re-fire a fault its predecessor already spent;
scope-less plans fall back to per-process one-shot state.

The module is stdlib-only and — like :mod:`repro.obs` — a true no-op until
a plan is activated: disabled hot paths pay one module-global ``None``
check.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from contextlib import contextmanager
from pathlib import Path

from .errors import FaultInjectedError, FaultPlanError

__all__ = ["FaultPlan", "activate", "active_plan", "plan_from_spec"]

# (field, default, validator description) — the wire allowlist.
_PLAN_FIELDS = (
    ("seed", 0),
    ("evaluator_error_rate", 0.0),
    ("evaluator_error_attempts", 1),
    ("evaluator_hang_s", 0.0),
    ("torn_write", False),
    ("fsync_error", False),
    ("kill_after_records", None),
    ("claim_delay_s", 0.0),
)
_PLAN_KEYS = frozenset(name for name, _ in _PLAN_FIELDS)


class FaultPlan:
    """A validated, seeded set of faults to inject (see module docstring)."""

    def __init__(
        self,
        *,
        seed=0,
        evaluator_error_rate=0.0,
        evaluator_error_attempts=1,
        evaluator_hang_s=0.0,
        torn_write=False,
        fsync_error=False,
        kill_after_records=None,
        claim_delay_s=0.0,
        scope=None,
    ):
        self.seed = _require_int(seed, "seed", minimum=None)
        self.evaluator_error_rate = _require_rate(
            evaluator_error_rate, "evaluator_error_rate"
        )
        self.evaluator_error_attempts = _require_int(
            evaluator_error_attempts, "evaluator_error_attempts", minimum=1
        )
        self.evaluator_hang_s = _require_seconds(evaluator_hang_s, "evaluator_hang_s")
        self.torn_write = _require_bool(torn_write, "torn_write")
        self.fsync_error = _require_bool(fsync_error, "fsync_error")
        if kill_after_records is not None:
            kill_after_records = _require_int(
                kill_after_records, "kill_after_records", minimum=1
            )
        self.kill_after_records = kill_after_records
        self.claim_delay_s = _require_seconds(claim_delay_s, "claim_delay_s")
        self.scope = Path(scope) if scope is not None else None
        self._reset_runtime_state()

    def _reset_runtime_state(self):
        self._attempts = {}  # point key -> injected evaluator errors so far
        self._fired = set()  # scope-less one-shot points fired in-process
        self._appended = 0  # durable appends seen by this process

    # Runtime state is per-process by design: a pickled plan travelling to
    # a pool worker starts with fresh counters, and durable one-shot state
    # lives in the scope markers, not here.
    def __getstate__(self):
        state = dict(self.__dict__)
        state["_attempts"] = {}
        state["_fired"] = set()
        state["_appended"] = 0
        return state

    def __repr__(self):
        parts = ", ".join(f"{k}={v!r}" for k, v in sorted(self.spec().items()))
        return f"FaultPlan({parts})"

    # -- wire format -------------------------------------------------------

    def spec(self):
        """The canonical JSON-safe dict (non-default fields only).

        ``scope`` is a runtime binding, never serialized: the same plan
        rides the manifest for every shard, and each runner re-scopes it
        to the store it attaches to.
        """
        out = {}
        for name, default in _PLAN_FIELDS:
            value = getattr(self, name)
            if value != default:
                out[name] = value
        return out

    def scoped(self, scope):
        """A copy of this plan bound to ``scope`` for one-shot markers."""
        kwargs = {name: getattr(self, name) for name, _ in _PLAN_FIELDS}
        return FaultPlan(scope=scope, **kwargs)

    # -- injection points --------------------------------------------------

    def evaluator_fault(self, key):
        """Called by ``FaultyEvaluator`` before each real evaluation.

        May sleep (one-shot hang) and may raise :class:`FaultInjectedError`
        (seeded transient error, at most ``evaluator_error_attempts`` times
        per point per process).
        """
        if self.evaluator_hang_s > 0 and self._fire_once("evaluator_hang"):
            self._count("evaluator_hang")
            time.sleep(self.evaluator_hang_s)
        if self._selected("evaluator_error", key, self.evaluator_error_rate):
            n = self._attempts.get(key, 0) + 1
            self._attempts[key] = n
            if n <= self.evaluator_error_attempts:
                self._count("evaluator_error")
                raise FaultInjectedError(
                    f"injected transient evaluator error (attempt {n})"
                )

    def torn_write_fault(self, path):
        """True exactly once when a record append should tear mid-line."""
        if not self.torn_write or not self._in_scope(path):
            return False
        if not self._fire_once("torn_write"):
            return False
        self._count("torn_write")
        return True

    def fsync_fault(self, path):
        """Raise ``OSError`` out of one durability barrier (one-shot)."""
        if self.fsync_error and self._in_scope(path) and self._fire_once("fsync_error"):
            self._count("fsync_error")
            raise OSError(f"injected fsync failure for {path}")

    def note_append(self):
        """SIGKILL this process once ``kill_after_records`` appends land."""
        if self.kill_after_records is None:
            return
        self._appended += 1
        if self._appended >= self.kill_after_records and self._fire_once("kill"):
            self._count("kill")
            os.kill(os.getpid(), signal.SIGKILL)

    def claim_fault(self):
        """Widen the steal-claim race window by ``claim_delay_s``."""
        if self.claim_delay_s > 0:
            self._count("claim_delay")
            time.sleep(self.claim_delay_s)

    # -- mechanics ---------------------------------------------------------

    def _selected(self, point, key, rate):
        """Seed-deterministic membership of ``key`` in a ``rate`` subset."""
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        digest = hashlib.sha256(f"{self.seed}|{point}|{key}".encode()).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64 < rate

    def _fire_once(self, point):
        """Claim the one-shot marker for ``point``; True on first claim.

        With a scope the marker is a durable ``O_EXCL`` file, shared by
        every process (including relaunches) working the same store.
        """
        if self.scope is None:
            if point in self._fired:
                return False
            self._fired.add(point)
            return True
        markers = self.scope / "fault-markers"
        markers.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(
                markers / f"{point}.fired", os.O_CREAT | os.O_EXCL | os.O_WRONLY
            )
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def _in_scope(self, path):
        if self.scope is None:
            return True
        try:
            return Path(path).resolve().is_relative_to(self.scope.resolve())
        except OSError:
            return False

    def _count(self, point):
        # Lazy import: this module must stay an import leaf so obs/dist can
        # import it at module level, and counting only happens when a fault
        # actually fires.
        from .. import obs

        obs.counter(
            "faults_injected",
            help="Faults fired by the active fault plan.",
            point=point,
        ).inc()


def plan_from_spec(spec):
    """Validate a wire-format fault plan (a JSON object) into a FaultPlan."""
    if isinstance(spec, FaultPlan):
        return spec
    if not isinstance(spec, dict):
        raise FaultPlanError(
            f"fault plan must be a JSON object, got {type(spec).__name__}"
        )
    unknown = sorted(set(spec) - _PLAN_KEYS)
    if unknown:
        known = ", ".join(sorted(_PLAN_KEYS))
        raise FaultPlanError(
            f"unknown fault plan key(s) {unknown}; known keys: {known}"
        )
    try:
        return FaultPlan(**spec)
    except FaultPlanError:
        raise
    except (TypeError, ValueError) as exc:
        raise FaultPlanError(str(exc)) from None


# -- validation helpers ----------------------------------------------------


def _require_int(value, name, *, minimum):
    if isinstance(value, bool) or not isinstance(value, int):
        raise FaultPlanError(f"{name} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise FaultPlanError(f"{name} must be >= {minimum}, got {value!r}")
    return value


def _require_rate(value, name):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FaultPlanError(f"{name} must be a number in [0, 1], got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise FaultPlanError(f"{name} must be within [0, 1], got {value!r}")
    return float(value)


def _require_seconds(value, name):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise FaultPlanError(f"{name} must be a non-negative number, got {value!r}")
    if value < 0:
        raise FaultPlanError(f"{name} must be non-negative, got {value!r}")
    return float(value)


def _require_bool(value, name):
    if not isinstance(value, bool):
        raise FaultPlanError(f"{name} must be a boolean, got {value!r}")
    return value


# -- activation ------------------------------------------------------------

# The single active plan, consulted by deep write-path hooks (store/event
# appends) that have no way to receive a plan argument.  ``None`` means
# every hook is a no-op; runners activate a scoped plan for the duration
# of a faulty study.
_ACTIVE = None


def active_plan():
    """The currently activated plan, or None (the common, no-op case)."""
    return _ACTIVE


@contextmanager
def activate(plan):
    """Make ``plan`` visible to write-path hooks for the duration."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous
