"""Exception taxonomy for fault injection and retry classification.

Kept stdlib-only and import-leaf so every layer (``harness``, ``dist``,
``obs``) can import it at module level without cycles.
"""

from __future__ import annotations

__all__ = ["FaultInjectedError", "FaultPlanError", "TransientError"]


class TransientError(Exception):
    """Marker base class for failures that are worth retrying.

    Evaluators (or the code they call) raise a ``TransientError`` subclass
    to tell the distributed runner that re-evaluating the same point may
    succeed.  Deterministic failures — bad parameters, model bugs — should
    raise anything else and are persisted exactly once.
    """


class FaultInjectedError(TransientError):
    """An error produced by an active :class:`repro.faults.FaultPlan`.

    Subclasses :class:`TransientError` because every injected fault models
    an environmental hiccup (flaky evaluator, dying disk, killed process),
    which is exactly the class of failure the retry machinery must absorb.
    """


class FaultPlanError(ValueError):
    """A fault-plan spec failed validation (unknown key, bad type/range)."""
