"""Roofline model for the attention bottleneck (paper Fig. 3).

The figure plots the S = Q·Kᵀ kernel under three regimes against ViTCoD's
compute roof (256 GOPS) and DDR4 bandwidth roof (76.8 GB/s):

* **Dense ViTs** — full n² scores, Q/K loaded once: intensity ≈ 3.9 Op/B;
* **Sparse ViTs** — 90 %-pruned diagonal masks processed naively: every
  non-zero fetches its own Q and K vectors (no reuse), intensity ≈ 0.6 Op/B,
  deep in the bandwidth-bound region *despite* doing 10× less work;
* **ViTCoD** — polarization restores streaming reuse and the AE halves Q/K
  bytes, pushing the operating point toward the ridge.
"""

from __future__ import annotations

from dataclasses import dataclass

from .hw.params import VITCOD_DEFAULT, HardwareConfig

__all__ = ["RooflinePoint", "attainable_gops", "sddmm_roofline_points",
           "ridge_intensity"]


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel placed on the roofline."""

    name: str
    ops: float
    bytes: float
    config: HardwareConfig = VITCOD_DEFAULT

    @property
    def intensity(self):
        """Operational intensity in Ops/Byte."""
        if self.bytes == 0:
            return float("inf")
        return self.ops / self.bytes

    @property
    def attainable_gops(self):
        return attainable_gops(self.intensity, self.config)

    @property
    def bound(self):
        """Which roof limits this kernel: 'memory' or 'compute'."""
        ridge = ridge_intensity(self.config)
        return "memory" if self.intensity < ridge else "compute"

    @property
    def runtime_seconds(self):
        """Time under the roofline model (ops at attainable throughput)."""
        if self.ops == 0:
            return 0.0
        return self.ops / (self.attainable_gops * 1e9)


def attainable_gops(intensity, config=VITCOD_DEFAULT):
    """min(peak compute, bandwidth × intensity), in GOPS."""
    if intensity < 0:
        raise ValueError("intensity must be non-negative")
    bandwidth_gbps = config.dram_bandwidth_bytes_per_s / 1e9
    return min(config.peak_gops, bandwidth_gbps * intensity)


def ridge_intensity(config=VITCOD_DEFAULT):
    """Intensity at which the two roofs meet (Ops/Byte)."""
    return config.peak_gops / (config.dram_bandwidth_bytes_per_s / 1e9)


def sddmm_roofline_points(num_tokens=197, embed_dim=768, sparsity=0.9,
                          ae_compression=0.5, locality=0.9,
                          config=VITCOD_DEFAULT):
    """The three Fig. 3 operating points for one attention layer's SDDMM.

    ``locality`` is the post-reorder streaming-locality fraction of sparse
    non-zeros (from the mask; see ``repro.hw.workload``).
    """
    n, d = num_tokens, embed_dim
    b = config.bytes_per_element
    dense_ops = n * n * d  # MACs, all heads folded into d (paper's op convention)
    qk_bytes = 2 * n * d * b

    dense = RooflinePoint("dense-vits", ops=dense_ops, bytes=qk_bytes,
                          config=config)

    nnz_scores = (1.0 - sparsity) * n * n
    sparse_ops = nnz_scores * d
    # Naive sparse: per-score Q and K vector fetches, no reuse.
    sparse_bytes = nnz_scores * 2 * d * b
    sparse = RooflinePoint("sparse-vits", ops=sparse_ops, bytes=sparse_bytes,
                           config=config)

    # ViTCoD: streams Q and K once (compressed), only the non-local fraction
    # pays scattered fetches (also compressed).
    scattered = nnz_scores * (1.0 - locality)
    vitcod_bytes = qk_bytes * ae_compression + scattered * d * b * ae_compression
    vitcod = RooflinePoint("vitcod", ops=sparse_ops, bytes=vitcod_bytes,
                           config=config)
    return [dense, sparse, vitcod]
