"""Algorithm-hardware interface pipeline (paper Fig. 14)."""

from .isa import Opcode, Instruction, Program
from .parser import LayerConfig, parse_layers
from .codegen import compile_layers
from .executor import execute_attention_layer, dense_masked_attention_reference
from .reconfig import (
    CompileCost,
    estimate_compile_cost,
    amortized_overhead,
    break_even_inferences,
)

__all__ = [
    "Opcode",
    "Instruction",
    "Program",
    "LayerConfig",
    "parse_layers",
    "compile_layers",
    "execute_attention_layer",
    "dense_masked_attention_reference",
    "CompileCost",
    "estimate_compile_cost",
    "amortized_overhead",
    "break_even_inferences",
]
