"""Functional executor: runs the polarized sparse-attention pipeline on real
tensors the way the hardware would, for numerical validation.

The performance simulator (:mod:`repro.hw`) models *time*; this executor
models *values*.  For each head it reorders tokens by the Algorithm-1
permutation, computes the denser block densely (global-token columns), walks
the sparser remainder column-by-column through its CSC index (exactly the
K-stationary order the sparser engine uses), applies a masked softmax, and
performs the SpMM.  The result must match — to floating-point tolerance — a
dense masked-attention reference, which the test suite asserts.
"""

from __future__ import annotations

import numpy as np

from ..formats.sparse import CSCMatrix
from ..sparsity.split_conquer import SplitConquerResult

__all__ = ["execute_attention_layer", "dense_masked_attention_reference"]


def dense_masked_attention_reference(q, k, v, mask, scale=None):
    """Reference: softmax over kept entries of (Q·Kᵀ)·scale, then ·V.

    Shapes: q/k/v are (H, N, dk), mask is (H, N, N) boolean.
    """
    q, k, v = (np.asarray(x, dtype=np.float64) for x in (q, k, v))
    mask = np.asarray(mask, dtype=bool)
    dk = q.shape[-1]
    scale = scale if scale is not None else 1.0 / np.sqrt(dk)
    scores = np.einsum("hnd,hmd->hnm", q, k) * scale
    scores = np.where(mask, scores, -np.inf)
    scores -= scores.max(axis=-1, keepdims=True)
    weights = np.exp(scores)
    weights = np.where(mask, weights, 0.0)
    weights /= weights.sum(axis=-1, keepdims=True)
    return np.einsum("hnm,hmd->hnd", weights, v)


def execute_attention_layer(q, k, v, result: SplitConquerResult, scale=None):
    """Execute one layer through the two-engine pipeline.

    Parameters
    ----------
    q, k, v:
        Arrays of shape (H, N, dk) in the ORIGINAL token order.
    result:
        Split-and-conquer output carrying the per-head permutations, the
        denser/sparser partition, and the mask.

    Returns
    -------
    ndarray (H, N, dk)
        Attention output in the original token order.
    """
    q, k, v = (np.asarray(x, dtype=np.float64) for x in (q, k, v))
    num_heads, n, dk = q.shape
    if num_heads != result.num_heads or n != result.num_tokens:
        raise ValueError(
            f"tensor shape ({num_heads}, {n}) does not match split-conquer "
            f"result ({result.num_heads}, {result.num_tokens})"
        )
    scale = scale if scale is not None else 1.0 / np.sqrt(dk)

    out = np.empty_like(q)
    for h, part in enumerate(result.partitions):
        perm = part.permutation
        inverse = np.argsort(perm)
        qh, kh, vh = q[h][perm], k[h][perm], v[h][perm]
        ngt = part.num_global_tokens

        # Scores are built column-by-column into a sparse row-major table:
        # dense columns [0, ngt) from the denser engine, CSC-walked columns
        # [ngt, n) from the sparser engine.
        scores = np.full((n, n), -np.inf)

        # Denser engine: K-stationary over the global-token columns; the
        # whole column participates (the block is processed densely), but
        # only mask-kept entries survive into softmax.
        if ngt > 0:
            dense_scores = qh @ kh[:ngt].T * scale  # (n, ngt)
            keep = part.denser_mask  # (n, ngt)
            scores[:, :ngt] = np.where(keep, dense_scores, -np.inf)

        # Sparser engine: CSC walk — resident K column, gather Q rows.
        sparser = CSCMatrix.from_dense(part.sparser_mask)
        for j in range(sparser.shape[1]):
            rows = sparser.column(j)
            if len(rows) == 0:
                continue
            col = ngt + j
            scores[rows, col] = qh[rows] @ kh[col] * scale

        # Softmax unit: row-wise over produced entries.
        row_max = scores.max(axis=1, keepdims=True)
        weights = np.exp(scores - row_max)
        weights[~np.isfinite(scores)] = 0.0
        row_sum = weights.sum(axis=1, keepdims=True)
        if np.any(row_sum == 0):
            raise ValueError(f"head {h} has a fully-pruned row")
        weights /= row_sum

        # SpMM (output-stationary): V' = S · V in reordered space, then
        # un-permute rows back to the original token order.
        out[h] = (weights @ vh)[inverse]
    return out
