"""Network parser: extract hardware configurations from sparse ViT layers.

First stage of the algorithm-hardware interface pipeline (Fig. 14): given
the split-and-conquer results for each layer, derive everything the hardware
compiler needs — global-token counts, non-zero counts, dataflow selection,
buffer and PE-line allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence


from ..hw.allocator import allocate_mac_lines
from ..hw.params import VITCOD_DEFAULT, HardwareConfig
from ..sparsity.split_conquer import SplitConquerResult

__all__ = ["LayerConfig", "parse_layers"]


@dataclass(frozen=True)
class LayerConfig:
    """Hardware configuration extracted for one attention layer."""

    layer_index: int
    num_tokens: int
    num_heads: int
    head_dim: int
    num_global_tokens: tuple  # per head
    denser_nnz: int
    sparser_nnz: int
    denser_lines: int
    sparser_lines: int
    dataflow_sddmm: str = "k_stationary"
    dataflow_spmm: str = "output_stationary"

    @property
    def sparsity(self):
        total = self.denser_nnz + self.sparser_nnz
        return 1.0 - total / (self.num_heads * self.num_tokens**2)


def parse_layers(results: Sequence[SplitConquerResult], head_dim,
                 config: HardwareConfig = None) -> List[LayerConfig]:
    """Parse split-and-conquer outputs into per-layer hardware configs."""
    config = config or VITCOD_DEFAULT
    layer_configs = []
    for i, result in enumerate(results):
        denser_nnz = int(sum(p.denser_nnz for p in result.partitions))
        sparser_nnz = int(sum(p.sparser_nnz for p in result.partitions))
        denser_products = sum(
            p.num_global_tokens * p.num_tokens for p in result.partitions
        )
        alloc = allocate_mac_lines(
            config.num_mac_lines,
            denser_products * head_dim,
            sparser_nnz * head_dim,
        )
        layer_configs.append(
            LayerConfig(
                layer_index=i,
                num_tokens=result.num_tokens,
                num_heads=result.num_heads,
                head_dim=head_dim,
                num_global_tokens=tuple(
                    int(p.num_global_tokens) for p in result.partitions
                ),
                denser_nnz=denser_nnz,
                sparser_nnz=sparser_nnz,
                denser_lines=alloc.denser_lines,
                sparser_lines=alloc.sparser_lines,
            )
        )
    return layer_configs
