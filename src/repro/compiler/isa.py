"""Instruction set of the ViTCoD accelerator's compiler (paper Fig. 14).

The hardware compiler turns parsed layer configurations into a short program
per attention layer; the instruction stream reconfigures buffers/PE
allocation, drives the two engines through the SDDMM → softmax → SpMM
pipeline, and inserts encode/decode steps around off-chip transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Opcode", "Instruction", "Program"]


class Opcode(Enum):
    CONFIGURE = "configure"  # reallocate buffers / PE lines for this layer
    LOAD_INDEX = "load_index"  # preload CSC indexes into the index buffer
    LOAD = "load"  # stream a tensor from DRAM (optionally compressed)
    DECODE = "decode"  # AE decoder: compressed -> full head dimension
    ENCODE = "encode"  # AE encoder: full -> compressed before store
    SDDMM_DENSE = "sddmm_dense"  # denser engine: global-token columns
    SDDMM_SPARSE = "sddmm_sparse"  # sparser engine: CSC-indexed non-zeros
    SOFTMAX = "softmax"
    SPMM = "spmm"  # output-stationary S·V
    GEMM = "gemm"  # dense layer on the reconfigured array
    STORE = "store"  # write a tensor back to DRAM


@dataclass(frozen=True)
class Instruction:
    opcode: Opcode
    operands: dict = field(default_factory=dict)

    def __str__(self):
        args = ", ".join(f"{k}={v}" for k, v in sorted(self.operands.items()))
        return f"{self.opcode.value}({args})"


@dataclass
class Program:
    """A compiled instruction stream for one model."""

    name: str
    instructions: list = field(default_factory=list)

    def append(self, opcode, **operands):
        self.instructions.append(Instruction(opcode, operands))

    def __len__(self):
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)

    def count(self, opcode):
        return sum(1 for inst in self.instructions if inst.opcode is opcode)

    def listing(self):
        return "\n".join(
            f"{i:4d}: {inst}" for i, inst in enumerate(self.instructions)
        )
