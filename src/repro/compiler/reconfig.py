"""Reconfigurability cost model (paper §V-B.3).

The accelerator supports task changes (new mask patterns, head counts) via
a one-time compilation that re-generates instructions and re-allocates
buffers/PE lines; "the cost of such reconfigurability is amortized across
the execution lifetime of each task".  This module quantifies exactly that:
compile-time cycles for a task, per-inference overhead after amortization,
and the break-even inference count versus a hypothetical dynamic-mask
design that pays prediction on every input.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Sequence

from ..hw.params import VITCOD_DEFAULT, HardwareConfig
from .parser import LayerConfig

__all__ = ["CompileCost", "estimate_compile_cost", "amortized_overhead",
           "break_even_inferences"]

#: Host-side work per emitted instruction (decode/pack/check), in
#: accelerator-clock cycles — a conservative constant for a small RISC
#: controller.
_CYCLES_PER_INSTRUCTION = 32
#: Cycles to rewrite one PE line's configuration registers.
_CYCLES_PER_LINE_CONFIG = 4


@dataclass(frozen=True)
class CompileCost:
    """One-time task-switch cost."""

    instruction_cycles: int
    index_build_cycles: int
    config_cycles: int

    @property
    def total_cycles(self):
        return (self.instruction_cycles + self.index_build_cycles
                + self.config_cycles)

    def seconds(self, config: HardwareConfig = None):
        config = config or VITCOD_DEFAULT
        return self.total_cycles / config.frequency_hz


def estimate_compile_cost(layer_configs: Sequence[LayerConfig],
                          config: HardwareConfig = None) -> CompileCost:
    """Compile cost for one task (all its attention layers)."""
    config = config or VITCOD_DEFAULT
    if not layer_configs:
        raise ValueError("no layer configs to compile")
    instructions = 13 * len(layer_configs)  # codegen emits ~13 per layer
    instruction_cycles = instructions * _CYCLES_PER_INSTRUCTION
    # CSC build: one pass over the mask non-zeros (host-side, pipelined
    # 8 entries/cycle through the packer).
    nnz = sum(c.sparser_nnz for c in layer_configs)
    index_build_cycles = ceil(nnz / 8)
    config_cycles = (
        len(layer_configs) * config.num_mac_lines * _CYCLES_PER_LINE_CONFIG
    )
    return CompileCost(
        instruction_cycles=instruction_cycles,
        index_build_cycles=index_build_cycles,
        config_cycles=config_cycles,
    )


def amortized_overhead(compile_cost: CompileCost, inference_cycles,
                       num_inferences):
    """Fractional overhead of compilation after ``num_inferences`` runs."""
    if num_inferences < 1:
        raise ValueError("num_inferences must be >= 1")
    if inference_cycles <= 0:
        raise ValueError("inference_cycles must be positive")
    return compile_cost.total_cycles / (num_inferences * inference_cycles)


def break_even_inferences(compile_cost: CompileCost,
                          per_inference_saving_cycles):
    """Inferences needed before one-time compilation beats a dynamic design
    that saves nothing but pays ``per_inference_saving_cycles`` less... i.e.
    the number of inferences after which the fixed-mask design's total cost
    (compile + cheaper inference) undercuts the dynamic design's
    (no compile + prediction every input)."""
    if per_inference_saving_cycles <= 0:
        raise ValueError("per_inference_saving_cycles must be positive")
    return ceil(compile_cost.total_cycles / per_inference_saving_cycles)
