"""Hardware compiler: layer configs → instruction streams (Fig. 14).

One-time compilation per task; the generated program reconfigures the
accelerator (buffer allocation, PE split, accumulation mode) and sequences
the attention pipeline with encode/decode steps around off-chip transfers.
"""

from __future__ import annotations

from typing import Sequence

from .isa import Opcode, Program
from .parser import LayerConfig

__all__ = ["compile_layers"]


def compile_layers(layer_configs: Sequence[LayerConfig], name="vit",
                   use_ae=True) -> Program:
    """Emit the instruction stream for a full model's attention layers."""
    program = Program(name=name)
    for cfg in layer_configs:
        program.append(
            Opcode.CONFIGURE,
            layer=cfg.layer_index,
            denser_lines=cfg.denser_lines,
            sparser_lines=cfg.sparser_lines,
            accumulation="inter_pe",  # K-stationary SDDMM mode (Fig. 12 ❶)
        )
        program.append(Opcode.LOAD_INDEX, layer=cfg.layer_index,
                       format="csc", nnz=cfg.sparser_nnz)
        program.append(Opcode.LOAD, tensor="K", compressed=use_ae)
        program.append(Opcode.LOAD, tensor="Q", compressed=use_ae)
        if use_ae:
            program.append(Opcode.DECODE, tensor="K")
            program.append(Opcode.DECODE, tensor="Q")
        program.append(
            Opcode.SDDMM_DENSE,
            layer=cfg.layer_index,
            global_tokens=cfg.num_global_tokens,
        )
        program.append(
            Opcode.SDDMM_SPARSE, layer=cfg.layer_index, nnz=cfg.sparser_nnz
        )
        program.append(Opcode.SOFTMAX, layer=cfg.layer_index)
        program.append(
            Opcode.CONFIGURE,
            layer=cfg.layer_index,
            accumulation="intra_pe",  # output-stationary SpMM mode (❷)
        )
        program.append(Opcode.LOAD, tensor="V", compressed=False)
        program.append(Opcode.SPMM, layer=cfg.layer_index)
        program.append(Opcode.STORE, tensor="V_out", compressed=False)
    return program
