"""The ``repro`` logger hierarchy (library-quiet, opt-in handlers).

Every module logs through ``repro.<layer>.<module>`` names obtained from
:func:`get_logger`; the package root carries a ``NullHandler`` (the
stdlib's library convention) so importing repro never prints anything.
Applications — ``python -m repro serve --verbose``, a test with
``caplog`` — opt in via :func:`configure_logging` or the standard
``logging`` machinery.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["ROOT_LOGGER", "get_logger", "configure_logging"]

#: The package root every repro logger descends from.
ROOT_LOGGER = "repro"

#: Attribute marking handlers installed by :func:`configure_logging`, so
#: reconfiguration replaces ours instead of stacking duplicates.
_HANDLER_MARK = "_repro_obs_handler"

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name=None) -> logging.Logger:
    """``get_logger("harness.dse")`` → the ``repro.harness.dse`` logger."""
    if not name or name == ROOT_LOGGER:
        return logging.getLogger(ROOT_LOGGER)
    if name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(level=logging.INFO, stream=None) -> logging.Logger:
    """Attach one stream handler to the ``repro`` root (idempotent).

    Calling again replaces the previously installed handler — repeated
    ``--verbose`` boots in one process never double-log.  Returns the
    root logger.
    """
    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_MARK, False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(
        logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
    )
    setattr(handler, _HANDLER_MARK, True)
    root.addHandler(handler)
    root.setLevel(level)
    return root
