"""Chrome trace-event output: spans as ``X`` events, Perfetto-viewable.

``python -m repro dse --trace out.json`` installs a :class:`ChromeTrace`
on the default registry; every :class:`repro.obs.registry.Span` then adds
one complete (``"ph": "X"``) event, and the collector writes the
`trace-event format`_ JSON that https://ui.perfetto.dev and
``chrome://tracing`` load directly.

Timestamps are microseconds relative to the collector's creation (the
format's convention), taken from the same ``time.perf_counter`` clock the
spans measure with — span durations in the trace equal the histogram
observations exactly.

.. _trace-event format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import os
import threading
from contextlib import contextmanager
from pathlib import Path
from time import perf_counter

from .registry import get_registry

__all__ = ["ChromeTrace", "tracing"]


class ChromeTrace:
    """Thread-safe collector of trace events for one process."""

    def __init__(self):
        self._lock = threading.Lock()
        self._events = []
        self.epoch = perf_counter()

    def add_complete(self, name, start_s, duration_s, args=None):
        """One ``X`` (complete) event: a span with a start and a length."""
        event = {
            "name": name,
            "cat": "repro",
            "ph": "X",
            "ts": (start_s - self.epoch) * 1e6,
            "dur": duration_s * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    def add_instant(self, name, args=None):
        """One ``i`` (instant) event: a point-in-time marker."""
        event = {
            "name": name,
            "cat": "repro",
            "ph": "i",
            "s": "t",
            "ts": (perf_counter() - self.epoch) * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    @property
    def events(self) -> list:
        with self._lock:
            return list(self._events)

    def to_dict(self) -> dict:
        events = sorted(self.events, key=lambda event: event["ts"])
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write(self, path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_dict()) + "\n")
        return path


@contextmanager
def tracing(path=None, registry=None):
    """Install a tracer on ``registry`` for the ``with`` body.

    Yields the :class:`ChromeTrace`; on exit the previous tracer comes
    back and, when ``path`` is given, the trace file is written.  Works
    on the *disabled* default registry too — spans fire for the tracer
    without turning metrics collection on.
    """
    registry = registry if registry is not None else get_registry()
    tracer = ChromeTrace()
    previous = registry.tracer
    registry.tracer = tracer
    try:
        yield tracer
    finally:
        registry.tracer = previous
        if path is not None:
            tracer.write(path)
