"""Full-stack telemetry: metrics, spans, traces, event streams, logging.

One stdlib-only subsystem feeding three surfaces:

* ``GET /metrics`` — the default registry rendered in Prometheus text
  exposition format (:mod:`.prometheus`);
* ``GET /jobs/<id>/events`` — durable per-job ``events.jsonl`` timelines
  (:mod:`.events`);
* ``python -m repro dse --trace out.json`` — spans as Chrome trace-event
  ``X`` events, viewable in Perfetto (:mod:`.trace`).

The process-global default registry (:mod:`.registry`) starts *disabled*
and is a true no-op until the serve layer (or a test/benchmark) enables
it — instrumentation is everywhere, cost is opt-in.  Telemetry observes
the data path and never alters it: result bytes are bit-identical with
collection on or off.
"""

from .events import EventLog, EventLogError
from .logs import ROOT_LOGGER, configure_logging, get_logger
from .prometheus import CONTENT_TYPE as METRICS_CONTENT_TYPE
from .prometheus import render_metrics
from .registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Registry,
    Span,
    counter,
    disable,
    enable,
    enabled,
    gauge,
    get_registry,
    histogram,
    set_registry,
    span,
    use_registry,
)
from .trace import ChromeTrace, tracing

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "METRICS_CONTENT_TYPE",
    "ROOT_LOGGER",
    "ChromeTrace",
    "Counter",
    "EventLog",
    "EventLogError",
    "Gauge",
    "Histogram",
    "Registry",
    "Span",
    "configure_logging",
    "counter",
    "disable",
    "enable",
    "enabled",
    "gauge",
    "get_logger",
    "get_registry",
    "histogram",
    "render_metrics",
    "set_registry",
    "span",
    "tracing",
    "use_registry",
]
