"""Durable per-job event streams: append-only, torn-tail-tolerant JSONL.

Each served job gets one ``events.jsonl`` in its directory; every
lifecycle step (submitted, queued, running, shard_started, …, done)
appends one record ``{"t": unix_seconds, "event": kind, ...fields}``.
The stream is the timeline source for ``GET /jobs/<id>/events`` and any
load-test harness reconstructing per-job latency breakdowns.

Durability follows the PR 4 store ledgers (``repro.dist.store``), and is
deliberately *self-contained* rather than importing them — ``repro.obs``
must stay a leaf package the dist layer itself can import:

* every append is written, flushed and fsynced before :meth:`append`
  returns — a ``kill -9`` loses at most the record being written;
* a torn final line (the one partial-write failure mode of O_APPEND
  writes) is repaired on the next open: a complete-JSON tail merely
  missing its newline is terminated, a garbage tail is truncated;
* :meth:`read` tolerates a torn final line but raises
  :class:`EventLogError` on mid-file corruption — silent data loss in
  the middle of a timeline would lie about job history.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

# Cycle-safe: repro.faults is stdlib-only at import time (it reaches for
# obs lazily, and only when a fault actually fires), so obs stays a leaf
# every other layer can import.
from ..faults.plan import active_plan

__all__ = ["EventLogError", "EventLog"]

#: How many trailing bytes the tail repair inspects; event records are a
#: few hundred bytes, so this comfortably covers any torn final line.
_TAIL_WINDOW = 65536


class EventLogError(RuntimeError):
    """An event stream with corruption before its final line."""


class EventLog:
    """One append-only JSONL event stream (usually a job's timeline)."""

    def __init__(self, path):
        self.path = Path(path)

    # -- writing -------------------------------------------------------
    def append(self, event: dict) -> dict:
        """Durably append one record; returns it for convenience."""
        line = json.dumps(event, sort_keys=True, allow_nan=False)
        self._repair_torn_tail()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            plan = active_plan()
            if plan is not None:
                # The injected OSError escapes mid-record — after the
                # write, before the durability barrier — exactly like a
                # dying disk; the torn-tail contract must still hold.
                plan.fsync_fault(self.path)
            os.fsync(fh.fileno())
        return event

    def _repair_torn_tail(self):
        """Fix a final line torn by a crash mid-write (same contract as
        the dist store's ``JsonlAppender``): a tail that parses as JSON
        gets its missing newline, anything else is truncated away."""
        try:
            size = self.path.stat().st_size
        except FileNotFoundError:
            return
        if size == 0:
            return
        with open(self.path, "r+b") as fh:
            fh.seek(max(0, size - _TAIL_WINDOW))
            window = fh.read()
            if window.endswith(b"\n"):
                return
            newline = window.rfind(b"\n")
            tail = window[newline + 1 :]
            tail_start = size - len(tail)
            try:
                json.loads(tail.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                fh.truncate(tail_start)
            else:
                fh.seek(0, os.SEEK_END)
                fh.write(b"\n")
            fh.flush()
            os.fsync(fh.fileno())

    # -- reading -------------------------------------------------------
    def read(self) -> list:
        """Every intact record, in order; ``[]`` for a missing stream."""
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return []
        events = []
        lines = text.split("\n")
        last = len(lines) - 1
        for number, line in enumerate(lines):
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except ValueError:
                if number == last:
                    break  # torn tail: the crash-interrupted final write
                raise EventLogError(
                    f"{self.path}: corrupt record on line {number + 1}"
                ) from None
        return events

    def __len__(self) -> int:
        return len(self.read())
