"""Prometheus text exposition rendering — stdlib only, no client library.

Renders a :class:`repro.obs.registry.Registry` into the `text exposition
format`_ version ``0.0.4`` that every Prometheus-compatible scraper
(Prometheus itself, VictoriaMetrics, Grafana Agent) understands:

.. code-block:: text

    # HELP serve_http_requests_total HTTP requests by route.
    # TYPE serve_http_requests_total counter
    serve_http_requests_total{method="GET",route="/health",status="200"} 3
    # TYPE serve_http_request_seconds histogram
    serve_http_request_seconds_bucket{route="/health",le="0.001"} 2
    ...
    serve_http_request_seconds_bucket{route="/health",le="+Inf"} 3
    serve_http_request_seconds_sum{route="/health"} 0.0042
    serve_http_request_seconds_count{route="/health"} 3

.. _text exposition format:
   https://prometheus.io/docs/instrumenting/exposition_formats/
"""

from __future__ import annotations

from math import inf

__all__ = ["CONTENT_TYPE", "render_metrics"]

#: The Content-Type a ``/metrics`` response must declare.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label(value) -> str:
    return str(value).replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _escape_help(text) -> str:
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _labels_text(labels, extra=None) -> str:
    pairs = list(labels)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"' for key, value in pairs)
    return "{" + inner + "}"


def render_metrics(registry) -> str:
    """The registry as Prometheus text; newline-terminated when non-empty."""
    lines = []
    for name, kind, help_, children in registry.collect():
        if help_:
            lines.append(f"# HELP {name} {_escape_help(help_)}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, metric in children:
            if kind == "histogram":
                for bound, cumulative in metric.cumulative_buckets():
                    le = "+Inf" if bound == inf else _format_value(bound)
                    suffix = _labels_text(labels, ("le", le))
                    lines.append(f"{name}_bucket{suffix} {cumulative}")
                lines.append(
                    f"{name}_sum{_labels_text(labels)} {_format_value(metric.sum)}"
                )
                lines.append(f"{name}_count{_labels_text(labels)} {metric.count}")
            else:
                lines.append(
                    f"{name}{_labels_text(labels)} {_format_value(metric.value)}"
                )
    lines.append("")
    return "\n".join(lines)
