"""Thread-safe telemetry primitives: counters, gauges, histograms, spans.

The registry is the single in-process metrics source every layer of the
repo reports into (DSE engine, dist shards, serve).  Design rules:

* **Stdlib only.**  No Prometheus client, no external deps — rendering
  lives in :mod:`repro.obs.prometheus`, collection here.
* **Disabled is free.**  The process-global default registry starts
  *disabled*: every accessor then returns a shared inert singleton, so an
  instrumented hot path pays one attribute check and nothing else (the
  ``obs_overhead`` benchmark asserts this stays < 3%).  The serve layer
  enables it; CLI tracing installs a tracer without enabling metrics.
* **Observe, never alter.**  Nothing in this module touches evaluator
  results — telemetry must leave result bytes bit-identical.

Spans extend :class:`repro.perf.timing.Timer` (the benchmark stopwatch):
a span is a Timer that, on exit, feeds a ``<name>_seconds`` histogram
and, when a tracer is installed, a Chrome trace-event (see
:mod:`repro.obs.trace`).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from math import inf

from ..perf.timing import Timer

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "Registry",
    "get_registry",
    "set_registry",
    "use_registry",
    "enable",
    "disable",
    "enabled",
    "counter",
    "gauge",
    "histogram",
    "span",
]

#: Fixed latency buckets (seconds).  Fixed — not adaptive — so two runs'
#: histograms are always mergeable and the Prometheus rendering is stable.
DEFAULT_LATENCY_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _label_suffix(labels) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing value (events since process start)."""

    kind = "counter"

    def __init__(self, name, labels=(), help=""):
        self.name = name
        self.labels = tuple(labels)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount=1):
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value


class Gauge:
    """A value that goes both ways (queue depth, chosen chunk size)."""

    kind = "gauge"

    def __init__(self, name, labels=(), help=""):
        self.name = name
        self.labels = tuple(labels)
        self.help = help
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value):
        with self._lock:
            self._value = value

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    def dec(self, amount=1):
        self.inc(-amount)

    @property
    def value(self):
        return self._value


class Histogram:
    """Fixed-bucket distribution with p50/p95/p99 summaries.

    Buckets are cumulative-``le`` at render time (Prometheus semantics);
    internally each bucket holds its own count so :meth:`observe` is one
    ``bisect`` plus three adds under the lock.
    """

    kind = "histogram"

    def __init__(self, name, labels=(), help="", buckets=DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(sorted(float(bound) for bound in buckets))
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.labels = tuple(labels)
        self.help = help
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # final slot: the +Inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value):
        value = float(value)
        with self._lock:
            self._counts[bisect_left(self.bounds, value)] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self):
        return self._count

    @property
    def sum(self):
        return self._sum

    def cumulative_buckets(self):
        """``[(upper_bound, cumulative_count)]`` ending at ``(inf, count)``."""
        with self._lock:
            counts = list(self._counts)
        out, cumulative = [], 0
        for bound, count in zip(self.bounds + (inf,), counts):
            cumulative += count
            out.append((bound, cumulative))
        return out

    def quantile(self, q):
        """Linear-interpolated quantile estimate; ``None`` when empty.

        Within the +Inf bucket there is nothing to interpolate against,
        so the estimate saturates at the largest finite bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            total = self._count
            counts = list(self._counts)
        if total == 0:
            return None
        target = q * total
        cumulative = 0
        lower = 0.0
        for bound, count in zip(self.bounds + (inf,), counts):
            cumulative += count
            if count and cumulative >= target:
                if bound == inf:
                    return lower
                fraction = (target - (cumulative - count)) / count
                return lower + (bound - lower) * max(0.0, min(1.0, fraction))
            if bound != inf:
                lower = bound
        return lower

    def summary(self):
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


class _NoopMetric:
    """Absorbs every metric operation; shared by all disabled call sites."""

    __slots__ = ()

    def inc(self, amount=1):
        pass

    def dec(self, amount=1):
        pass

    def set(self, value):
        pass

    def observe(self, value):
        pass

    @property
    def value(self):
        return 0


class _NoopSpan:
    """A ``with``-compatible span that measures nothing."""

    __slots__ = ()
    seconds = 0.0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NOOP_METRIC = _NoopMetric()
NOOP_SPAN = _NoopSpan()


class Span(Timer):
    """A timed region: a :class:`Timer` that reports where it went.

    On exit the elapsed time lands in a ``<name>_seconds`` histogram
    (when the registry is enabled) and, when a tracer is installed, as a
    Chrome trace-event ``X`` span — so the same ``with`` block feeds both
    ``/metrics`` and ``--trace out.json``.
    """

    def __init__(self, registry, name, trace_args=None):
        super().__init__()
        self._registry = registry
        self.name = name
        self._trace_args = trace_args

    def __exit__(self, *exc):
        super().__exit__(*exc)
        registry = self._registry
        if registry.enabled:
            registry.histogram(f"{self.name}_seconds").observe(self.seconds)
        tracer = registry.tracer
        if tracer is not None:
            tracer.add_complete(self.name, self._start, self.seconds, self._trace_args)
        return False


class Registry:
    """Get-or-create metric store; one per process is the normal shape.

    Metrics are keyed by ``(name, sorted label items)``; a name maps to
    exactly one kind (mixing kinds under one name raises).  When
    ``enabled`` is ``False`` every accessor returns the shared no-op
    singleton without touching the store.
    """

    def __init__(self, enabled=True):
        self.enabled = bool(enabled)
        self.tracer = None  # a ChromeTrace, or None
        self._lock = threading.Lock()
        self._metrics = {}
        self._kinds = {}

    # -- get-or-create -------------------------------------------------
    def _get_or_create(self, cls, name, labels, help, **kwargs):
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                kind = self._kinds.get(name)
                if kind is not None and kind != cls.kind:
                    raise ValueError(
                        f"metric {name!r} already registered as a {kind}, "
                        f"not a {cls.kind}"
                    )
                metric = cls(name, labels=key[1], help=help, **kwargs)
                self._metrics[key] = metric
                self._kinds[name] = cls.kind
            elif metric.kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {metric.kind}, "
                    f"not a {cls.kind}"
                )
            return metric

    def counter(self, name, help="", **labels) -> Counter:
        if not self.enabled:
            return NOOP_METRIC
        return self._get_or_create(Counter, name, labels, help)

    def gauge(self, name, help="", **labels) -> Gauge:
        if not self.enabled:
            return NOOP_METRIC
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(self, name, help="", buckets=None, **labels) -> Histogram:
        if not self.enabled:
            return NOOP_METRIC
        return self._get_or_create(
            Histogram, name, labels, help, buckets=buckets or DEFAULT_LATENCY_BUCKETS
        )

    def span(self, name, **trace_args):
        """A live span when metrics or tracing want it, else the no-op."""
        if not self.enabled and self.tracer is None:
            return NOOP_SPAN
        return Span(self, name, trace_args or None)

    # -- introspection -------------------------------------------------
    def get(self, name, **labels):
        """The metric object, or ``None`` if never touched."""
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            return self._metrics.get(key)

    def value(self, name, **labels):
        """Counter/gauge value (``None`` if absent) — test convenience."""
        metric = self.get(name, **labels)
        return None if metric is None else metric.value

    def collect(self):
        """``[(name, kind, help, [(labels, metric), ...])]``, name-sorted."""
        with self._lock:
            items = sorted(self._metrics.items())
        families = {}
        for (name, labels), metric in items:
            families.setdefault(name, []).append((labels, metric))
        out = []
        for name, children in sorted(families.items()):
            help_ = next((m.help for _, m in children if m.help), "")
            out.append((name, children[0][1].kind, help_, children))
        return out

    def snapshot(self) -> dict:
        """Flat ``{"name{labels}": value-or-summary}`` view for tests."""
        out = {}
        for name, kind, _help, children in self.collect():
            for labels, metric in children:
                key = name + _label_suffix(labels)
                out[key] = metric.summary() if kind == "histogram" else metric.value
        return out


# ----------------------------------------------------------------------
# The process-global default registry.  Disabled until someone (the serve
# layer, a test, a benchmark) opts in; instrumented modules always go
# through these module functions so a registry swap is seen everywhere.
# ----------------------------------------------------------------------
_default = Registry(enabled=False)


def get_registry() -> Registry:
    return _default


def set_registry(registry: Registry) -> Registry:
    """Swap the default registry; returns the previous one."""
    global _default
    previous = _default
    _default = registry
    return previous


@contextmanager
def use_registry(registry: Registry):
    """Scoped registry swap — how tests and benchmarks isolate counts."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def enable():
    _default.enabled = True


def disable():
    _default.enabled = False


def enabled() -> bool:
    return _default.enabled


def counter(name, help="", **labels):
    return _default.counter(name, help=help, **labels)


def gauge(name, help="", **labels):
    return _default.gauge(name, help=help, **labels)


def histogram(name, help="", buckets=None, **labels):
    return _default.histogram(name, help=help, buckets=buckets, **labels)


def span(name, **trace_args):
    return _default.span(name, **trace_args)
